package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"bwshare/internal/benchsuite"
)

func TestListPrintsSuite(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"WaterFill/opt/32", "CoupledAllocator/ref/gige/32", "Sweep/exp-rnd/8"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %q:\n%s", want, out.String())
		}
	}
}

func TestNextPR(t *testing.T) {
	dir := t.TempDir()
	if got := nextPR(dir); got != 1 {
		t.Errorf("empty dir: nextPR = %d, want 1", got)
	}
	for _, name := range []string{"BENCH_2.json", "BENCH_10.json", "BENCH_x.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if got := nextPR(dir); got != 11 {
		t.Errorf("nextPR = %d, want 11 (one past BENCH_10.json)", got)
	}
}

func TestBadFilter(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-filter", "("}, &out); err == nil {
		t.Fatal("want error for invalid regexp")
	}
	if err := run([]string{"-filter", "no-such-benchmark"}, &out); err == nil {
		t.Fatal("want error when nothing matches")
	}
}

// TestWritesSnapshot runs the cheapest benchmark and checks the JSON
// document shape.
func TestWritesSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real benchmark")
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	var out bytes.Buffer
	if err := run([]string{"-filter", "^WaterFill/opt/32$", "-out", path, "-pr", "42"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "BenchmarkWaterFill/opt/32") {
		t.Errorf("missing go-bench progress line:\n%s", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Schema != "bwshare-bench/v1" || snap.PR != 42 || len(snap.Benchmarks) != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	b := snap.Benchmarks[0]
	if b.Name != "WaterFill/opt/32" || b.N <= 0 || b.NsPerOp <= 0 {
		t.Fatalf("benchmark result = %+v", b)
	}
	if !raceEnabled && b.AllocsPerOp != 0 {
		t.Errorf("steady-state WaterFill allocs/op = %d, want 0", b.AllocsPerOp)
	}
}

func TestCompareResults(t *testing.T) {
	base := []benchsuite.Result{
		{Name: "a", NsPerOp: 100, AllocsPerOp: 0},
		{Name: "b", NsPerOp: 100, AllocsPerOp: 5},
	}
	cur := []benchsuite.Result{
		{Name: "a", NsPerOp: 120, AllocsPerOp: 0}, // +20%: within 25%
		{Name: "b", NsPerOp: 90, AllocsPerOp: 7},  // faster; alloc increase on a non-zero-alloc suite is tolerated
		{Name: "new", NsPerOp: 1, AllocsPerOp: 9}, // no baseline
	}
	lines, slow, failures := compareResults(cur, base, 25, 50, nil)
	if len(failures) != 0 || len(slow) != 0 {
		t.Fatalf("unexpected failures: %v (slow %v)", failures, slow)
	}
	if len(lines) != 3 || !strings.Contains(lines[2], "new in this tree") {
		t.Fatalf("lines = %v", lines)
	}

	cur[0].NsPerOp = 126 // +26%: over threshold
	cur[1].AllocsPerOp = 5
	_, slow, failures = compareResults(cur, base, 25, 50, nil)
	if len(failures) != 1 || !strings.Contains(failures[0], "ns/op +26.0%") {
		t.Fatalf("failures = %v", failures)
	}
	if len(slow) != 1 || slow[0] != "a" {
		t.Fatalf("slow = %v, want [a] (retryable)", slow)
	}

	cur[0].NsPerOp = 100
	cur[0].AllocsPerOp = 1 // alloc regression on a zero-alloc suite
	_, slow, failures = compareResults(cur, base, 25, 50, nil)
	if len(failures) != 1 || !strings.Contains(failures[0], "zero-alloc") {
		t.Fatalf("failures = %v", failures)
	}
	if len(slow) != 0 {
		t.Fatalf("alloc regressions are not retryable, slow = %v", slow)
	}
}

// TestCompareResultsMissingFromRun: a baseline benchmark absent from
// the fresh run (deleted or renamed suite entry) fails the gate instead
// of silently dropping its regression coverage, and is not retried as a
// noisy timing.
func TestCompareResultsMissingFromRun(t *testing.T) {
	base := []benchsuite.Result{
		{Name: "kept", NsPerOp: 100, AllocsPerOp: 0},
		{Name: "gone", NsPerOp: 100, AllocsPerOp: 0},
	}
	cur := []benchsuite.Result{
		{Name: "kept", NsPerOp: 100, AllocsPerOp: 0},
	}
	lines, slow, failures := compareResults(cur, base, 25, 50, nil)
	if len(failures) != 1 || !strings.Contains(failures[0], "gone") || !strings.Contains(failures[0], "missing") {
		t.Fatalf("failures = %v, want one missing-benchmark failure", failures)
	}
	if len(slow) != 0 {
		t.Fatalf("missing benchmarks are not retryable, slow = %v", slow)
	}
	found := false
	for _, l := range lines {
		if strings.Contains(l, "gone") && strings.Contains(l, "MISSING") {
			found = true
		}
	}
	if !found {
		t.Fatalf("report lines lack a MISSING entry: %v", lines)
	}
}

// TestCompareResultsIgnoreMissing: -ignore-missing exempts matching
// baseline entries from the missing-benchmark failure without touching
// non-matching ones.
func TestCompareResultsIgnoreMissing(t *testing.T) {
	base := []benchsuite.Result{
		{Name: "kept", NsPerOp: 100, AllocsPerOp: 0},
		{Name: "ShardChurn/gige/64jobs/x8", NsPerOp: 100, AllocsPerOp: 0},
		{Name: "gone", NsPerOp: 100, AllocsPerOp: 0},
	}
	cur := []benchsuite.Result{
		{Name: "kept", NsPerOp: 100, AllocsPerOp: 0},
	}
	missOK := regexp.MustCompile(`^(ShardChurn|ShardReplay)/`)
	lines, _, failures := compareResults(cur, base, 25, 50, missOK)
	if len(failures) != 1 || !strings.Contains(failures[0], "gone") {
		t.Fatalf("failures = %v, want only the non-exempt missing entry", failures)
	}
	exempted := false
	for _, l := range lines {
		if strings.Contains(l, "ShardChurn") && strings.Contains(l, "exempted") {
			exempted = true
		}
	}
	if !exempted {
		t.Fatalf("report lines lack the exempted entry: %v", lines)
	}
}

func TestTakeBestAndNameFilter(t *testing.T) {
	results := []benchsuite.Result{
		{Name: "a", NsPerOp: 200},
		{Name: "b", NsPerOp: 100},
	}
	rerun := []benchsuite.Result{
		{Name: "a", NsPerOp: 150},
		{Name: "b", NsPerOp: 300},
	}
	out := takeBest(results, rerun)
	if out[0].NsPerOp != 150 || out[1].NsPerOp != 100 {
		t.Errorf("takeBest = %v", out)
	}
	re := nameFilter([]string{"WaterFill/opt/32", "a+b"})
	if !re.MatchString("WaterFill/opt/32") || !re.MatchString("a+b") {
		t.Error("nameFilter should match listed names exactly")
	}
	if re.MatchString("WaterFill/opt/322") || re.MatchString("aab") {
		t.Error("nameFilter must not match other names")
	}
}

// TestCompareLoadSLO: service-level entries are gated on throughput
// floor and p99 ceiling, not ns/op or allocations.
func TestCompareLoadSLO(t *testing.T) {
	base := []benchsuite.Result{
		{Name: "Load/mixed/c4", N: 100, NsPerOp: 1e6, ThroughputRPS: 1000, P50Ns: 5e5, P95Ns: 2e6, P99Ns: 4e6},
	}
	ok := []benchsuite.Result{
		// Throughput -40%, p99 +40%: inside a 50% SLO band. Allocations
		// and ns/op blowups on load entries are irrelevant.
		{Name: "Load/mixed/c4", N: 100, NsPerOp: 9e9, AllocsPerOp: 999, ThroughputRPS: 600, P50Ns: 5e5, P95Ns: 2e6, P99Ns: 5.6e6},
	}
	lines, slow, failures := compareResults(ok, base, 25, 50, nil)
	if len(failures) != 0 || len(slow) != 0 {
		t.Fatalf("within-SLO load entry failed: %v (slow %v)", failures, slow)
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "req/s") {
		t.Fatalf("load line should report req/s and p99: %v", lines)
	}

	slowTput := []benchsuite.Result{
		{Name: "Load/mixed/c4", N: 100, NsPerOp: 1e6, ThroughputRPS: 400, P99Ns: 4e6},
	}
	_, slow, failures = compareResults(slowTput, base, 25, 50, nil)
	if len(failures) != 1 || !strings.Contains(failures[0], "throughput") {
		t.Fatalf("throughput drop of 60%% must fail the 50%% floor: %v", failures)
	}
	if len(slow) != 1 {
		t.Fatalf("throughput failures are retryable, slow = %v", slow)
	}

	blownP99 := []benchsuite.Result{
		{Name: "Load/mixed/c4", N: 100, NsPerOp: 1e6, ThroughputRPS: 1000, P99Ns: 6.1e6},
	}
	_, slow, failures = compareResults(blownP99, base, 25, 50, nil)
	if len(failures) != 1 || !strings.Contains(failures[0], "p99") {
		t.Fatalf("p99 blowout of +52%% must fail the 50%% ceiling: %v", failures)
	}
	if len(slow) != 1 {
		t.Fatalf("p99 failures are retryable, slow = %v", slow)
	}
}

// TestTakeBestLoadEntries: retries fold field-wise best measurements
// for load entries (max throughput, min percentiles).
func TestTakeBestLoadEntries(t *testing.T) {
	results := []benchsuite.Result{
		{Name: "Load/x", NsPerOp: 100, ThroughputRPS: 500, P50Ns: 10, P95Ns: 20, P99Ns: 30},
	}
	rerun := []benchsuite.Result{
		{Name: "Load/x", NsPerOp: 120, ThroughputRPS: 700, P50Ns: 15, P95Ns: 18, P99Ns: 25},
	}
	out := takeBest(results, rerun)
	got := out[0]
	if got.ThroughputRPS != 700 || got.NsPerOp != 100 || got.P50Ns != 10 || got.P95Ns != 18 || got.P99Ns != 25 {
		t.Errorf("takeBest load merge = %+v", got)
	}
}

// TestBaselineValidation: a missing, malformed, wrong-schema or
// empty-in-scope baseline is a loud error, never a silent pass.
func TestBaselineValidation(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	var out bytes.Buffer
	if _, err := loadBaseline(filepath.Join(dir, "absent.json"), nil, true, &out); err == nil {
		t.Error("missing baseline should error")
	}
	if _, err := loadBaseline(write("bad.json", "not json"), nil, true, &out); err == nil {
		t.Error("malformed baseline should error")
	}
	if _, err := loadBaseline(write("schema.json", `{"schema":"other/v9","benchmarks":[{"name":"a"}]}`), nil, true, &out); err == nil {
		t.Error("wrong schema should error")
	}
	if _, err := loadBaseline(write("empty.json", `{"schema":"bwshare-bench/v1","benchmarks":[]}`), nil, true, &out); err == nil {
		t.Error("baseline with nothing in scope should error")
	}
	// Load entries drop out of scope under -load=false; if that empties
	// the baseline, the gate must refuse to run.
	loadOnly := `{"schema":"bwshare-bench/v1","benchmarks":[{"name":"Load/mixed/c4","throughput_rps":100,"p99_ns":1}]}`
	if _, err := loadBaseline(write("loadonly.json", loadOnly), nil, false, &out); err == nil {
		t.Error("load-only baseline with -load=false should error")
	}
	out.Reset()
	good := `{"schema":"bwshare-bench/v1","pr":7,"benchmarks":[{"name":"a","ns_per_op":1}]}`
	base, err := loadBaseline(write("good.json", good), nil, true, &out)
	if err != nil {
		t.Fatalf("valid baseline rejected: %v", err)
	}
	if len(base.Benchmarks) != 1 {
		t.Errorf("baseline kept %d benchmarks, want 1", len(base.Benchmarks))
	}
	if !strings.Contains(out.String(), "good.json") || !strings.Contains(out.String(), "PR 7") {
		t.Errorf("check header must name the baseline file and PR:\n%s", out.String())
	}
}

// TestCheckMode runs the real -check flow against synthetic baselines
// using the cheapest benchmark.
func TestCheckMode(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real benchmark")
	}
	if raceEnabled {
		// sync.Pool drops items under -race, so the pool-backed
		// WaterFill benchmark allocates and trips the zero-alloc gate
		// against the synthetic zero-alloc baseline.
		t.Skip("zero-alloc baselines do not hold under the race detector")
	}
	dir := t.TempDir()
	writeBase := func(name string, ns float64, allocs int64) string {
		snap := snapshot{
			Schema: "bwshare-bench/v1", PR: 1,
			Benchmarks: []benchsuite.Result{{Name: "WaterFill/opt/32", N: 1, NsPerOp: ns, AllocsPerOp: allocs}},
		}
		data, _ := json.Marshal(snap)
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	generous := writeBase("generous.json", 1e12, 0)
	var out bytes.Buffer
	if err := run([]string{"-check", "-baseline", generous, "-filter", "^WaterFill/opt/32$"}, &out); err != nil {
		t.Fatalf("generous baseline should pass: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "check passed") {
		t.Errorf("missing pass summary:\n%s", out.String())
	}
	tight := writeBase("tight.json", 1e-6, 0)
	out.Reset()
	err := run([]string{"-check", "-baseline", tight, "-filter", "^WaterFill/opt/32$"}, &out)
	if err == nil || !strings.Contains(err.Error(), "bench regression") {
		t.Fatalf("tight baseline should fail with a regression, got %v", err)
	}
	if err := run([]string{"-check", "-baseline", filepath.Join(dir, "missing.json")}, &out); err == nil {
		t.Fatal("missing baseline file should error")
	}
	// A baseline entry the fresh (filtered) run no longer produces must
	// fail the gate; baseline entries outside the filter stay out of
	// scope and do not.
	withGone := snapshot{
		Schema: "bwshare-bench/v1", PR: 1,
		Benchmarks: []benchsuite.Result{
			{Name: "WaterFill/opt/32", N: 1, NsPerOp: 1e12, AllocsPerOp: 0},
			{Name: "WaterFill/renamed-away/32", N: 1, NsPerOp: 1e12, AllocsPerOp: 0},
			{Name: "Unrelated/outside-filter", N: 1, NsPerOp: 1e12, AllocsPerOp: 0},
		},
	}
	data, _ := json.Marshal(withGone)
	gonePath := filepath.Join(dir, "gone.json")
	if err := os.WriteFile(gonePath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	err = run([]string{"-check", "-baseline", gonePath, "-filter", "^WaterFill/"}, &out)
	if err == nil || !strings.Contains(err.Error(), "missing from this run") {
		t.Fatalf("baseline benchmark absent from the run should fail the gate, got %v", err)
	}
	if strings.Contains(err.Error(), "outside-filter") {
		t.Fatalf("baseline entries outside -filter must be out of scope, got %v", err)
	}
}
