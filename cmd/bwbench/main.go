// Command bwbench runs the canonical hot-path benchmark suite
// (internal/benchsuite) and writes a machine-readable perf snapshot,
// giving every PR a benchmark trajectory to compare against.
//
// Output is a JSON file (BENCH_<pr>.json by default):
//
//	{
//	  "schema": "bwshare-bench/v1",
//	  "pr": 2,
//	  "go": "go1.24.0", "goos": "linux", "goarch": "amd64",
//	  "benchmarks": [
//	    {"name": "WaterFill/opt/32", "n": 123, "ns_per_op": 4567.8,
//	     "bytes_per_op": 0, "allocs_per_op": 0},
//	    ...
//	  ]
//	}
//
// While running, standard Go benchmark lines are printed to stdout
// ("BenchmarkX-8  N  ns/op  B/op  allocs/op"), so piping a few runs into
// benchstat works exactly like `go test -bench`.
//
// Usage:
//
//	bwbench                          # full suite -> next free BENCH_<n>.json
//	bwbench -pr 3                    # -> BENCH_3.json (overwrites)
//	bwbench -out /tmp/b.json         # explicit path
//	bwbench -filter 'WaterFill'      # subset by regexp
//	bwbench -list                    # print benchmark names and exit
//
// Without -pr, the snapshot number is one past the highest committed
// BENCH_<n>.json, so a plain run never overwrites an earlier PR's
// trajectory point.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"

	"bwshare/internal/benchsuite"
)

// snapshot is the BENCH_<n>.json document.
type snapshot struct {
	Schema     string              `json:"schema"`
	PR         int                 `json:"pr"`
	Go         string              `json:"go"`
	GOOS       string              `json:"goos"`
	GOARCH     string              `json:"goarch"`
	Benchmarks []benchsuite.Result `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bwbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bwbench", flag.ContinueOnError)
	fs.SetOutput(out)
	pr := fs.Int("pr", 0, "PR number, names the output file BENCH_<pr>.json (0 = one past the highest existing snapshot)")
	outPath := fs.String("out", "", "output path (default BENCH_<pr>.json)")
	filter := fs.String("filter", "", "regexp selecting a benchmark subset")
	list := fs.Bool("list", false, "list benchmark names and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, bm := range benchsuite.Suite() {
			fmt.Fprintln(out, bm.Name)
		}
		return nil
	}
	var re *regexp.Regexp
	if *filter != "" {
		var err error
		if re, err = regexp.Compile(*filter); err != nil {
			return fmt.Errorf("bad -filter: %w", err)
		}
	}
	if *pr == 0 {
		*pr = nextPR(".")
	}
	path := *outPath
	if path == "" {
		path = fmt.Sprintf("BENCH_%d.json", *pr)
	}
	results, err := benchsuite.Run(re, func(r benchsuite.Result) {
		// go-test-style line: benchstat-compatible.
		fmt.Fprintf(out, "Benchmark%s-%d\t%d\t%.1f ns/op\t%d B/op\t%d allocs/op\n",
			r.Name, runtime.GOMAXPROCS(0), r.N, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	})
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark matches filter %q", *filter)
	}
	snap := snapshot{
		Schema:     "bwshare-bench/v1",
		PR:         *pr,
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: results,
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (%d benchmarks)\n", path, len(results))
	return nil
}

// nextPR returns one past the highest BENCH_<n>.json in dir, so an
// unnumbered run extends the trajectory instead of overwriting an
// earlier snapshot. An empty dir starts at 1.
func nextPR(dir string) int {
	matches, _ := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	high := 0
	for _, m := range matches {
		base := filepath.Base(m)
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(base, "BENCH_"), ".json"))
		if err == nil && n > high {
			high = n
		}
	}
	return high + 1
}
