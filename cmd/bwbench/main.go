// Command bwbench runs the canonical hot-path benchmark suite
// (internal/benchsuite) and writes a machine-readable perf snapshot,
// giving every PR a benchmark trajectory to compare against.
//
// Output is a JSON file (BENCH_<pr>.json by default):
//
//	{
//	  "schema": "bwshare-bench/v1",
//	  "pr": 2,
//	  "go": "go1.24.0", "goos": "linux", "goarch": "amd64",
//	  "benchmarks": [
//	    {"name": "WaterFill/opt/32", "n": 123, "ns_per_op": 4567.8,
//	     "bytes_per_op": 0, "allocs_per_op": 0},
//	    ...
//	  ]
//	}
//
// While running, standard Go benchmark lines are printed to stdout
// ("BenchmarkX-8  N  ns/op  B/op  allocs/op"), so piping a few runs into
// benchstat works exactly like `go test -bench`.
//
// Usage:
//
//	bwbench                          # full suite -> next free BENCH_<n>.json
//	bwbench -pr 3                    # -> BENCH_3.json (overwrites)
//	bwbench -out /tmp/b.json         # explicit path
//	bwbench -filter 'WaterFill'      # subset by regexp
//	bwbench -list                    # print benchmark names and exit
//	bwbench -check                   # regression gate vs latest snapshot
//	bwbench -check -baseline BENCH_2.json -threshold 25 -slo-threshold 50
//	bwbench -check -ignore-missing '^(ShardChurn|ShardReplay)/'
//
// Without -pr, the snapshot number is one past the highest committed
// BENCH_<n>.json, so a plain run never overwrites an earlier PR's
// trajectory point.
//
// Besides the function-level suite, every run includes the
// service-level load scenarios (internal/benchsuite's LoadSuite, built
// on internal/loadgen): seeded mixed HTTP workloads against an
// in-process bwserved, snapshotted as Load/ entries carrying
// throughput_rps and p50/p95/p99 latency. -load=false skips them for
// quick function-level iterations.
//
// With -check, no snapshot is written: the suite runs and is compared
// against the baseline snapshot (the highest committed BENCH_<n>.json by
// default; the header names exactly which file was used, and a missing
// or empty baseline is an error, never a silent pass). The run fails if
// any function-level benchmark regresses by more than -threshold
// percent ns/op, or allocates at all where the baseline was zero-alloc.
// Service-level Load/ entries are held to SLO gates instead: throughput
// may not drop more than -slo-threshold percent below the baseline, and
// p99 latency may not blow out more than -slo-threshold percent above
// it. Benchmarks new in this tree (absent from the baseline) are
// reported and skipped; baseline benchmarks missing from the run fail
// the gate unless -ignore-missing matches them. This is the CI
// bench-regression + load-SLO gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"

	"bwshare/internal/benchsuite"
)

// snapshot is the BENCH_<n>.json document.
type snapshot struct {
	Schema     string              `json:"schema"`
	PR         int                 `json:"pr"`
	Go         string              `json:"go"`
	GOOS       string              `json:"goos"`
	GOARCH     string              `json:"goarch"`
	Benchmarks []benchsuite.Result `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bwbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bwbench", flag.ContinueOnError)
	fs.SetOutput(out)
	pr := fs.Int("pr", 0, "PR number, names the output file BENCH_<pr>.json (0 = one past the highest existing snapshot)")
	outPath := fs.String("out", "", "output path (default BENCH_<pr>.json)")
	filter := fs.String("filter", "", "regexp selecting a benchmark subset")
	list := fs.Bool("list", false, "list benchmark names and exit")
	check := fs.Bool("check", false, "compare against a baseline snapshot instead of writing one; fail on regression")
	baseline := fs.String("baseline", "", "baseline snapshot for -check (default: highest BENCH_<n>.json in the working directory)")
	threshold := fs.Float64("threshold", 25, "ns/op regression tolerance for -check, in percent")
	sloThreshold := fs.Float64("slo-threshold", 50, "service-level tolerance for -check, in percent: throughput floor and p99 ceiling for Load/ entries")
	load := fs.Bool("load", true, "include the service-level load scenarios (Load/ entries)")
	ignoreMissing := fs.String("ignore-missing", "", "regexp of baseline benchmarks allowed to be missing from this run under -check (e.g. when gating against an older snapshot that predates a renamed suite row)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, bm := range benchsuite.Suite() {
			fmt.Fprintln(out, bm.Name)
		}
		if *load {
			for _, lb := range benchsuite.LoadSuite() {
				fmt.Fprintln(out, lb.Name)
			}
		}
		return nil
	}
	var re *regexp.Regexp
	if *filter != "" {
		var err error
		if re, err = regexp.Compile(*filter); err != nil {
			return fmt.Errorf("bad -filter: %w", err)
		}
	}
	var missOK *regexp.Regexp
	if *ignoreMissing != "" {
		if !*check {
			return fmt.Errorf("-ignore-missing only applies with -check")
		}
		var err error
		if missOK, err = regexp.Compile(*ignoreMissing); err != nil {
			return fmt.Errorf("bad -ignore-missing: %w", err)
		}
	}
	if *pr == 0 {
		*pr = nextPR(".")
	}
	path := *outPath
	if path == "" {
		path = fmt.Sprintf("BENCH_%d.json", *pr)
	}
	var base *snapshot
	if *check {
		var err error
		if base, err = loadBaseline(*baseline, re, *load, out); err != nil {
			return err
		}
	}
	results, err := benchsuite.Run(re, func(r benchsuite.Result) {
		// go-test-style line: benchstat-compatible.
		fmt.Fprintf(out, "Benchmark%s-%d\t%d\t%.1f ns/op\t%d B/op\t%d allocs/op\n",
			r.Name, runtime.GOMAXPROCS(0), r.N, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	})
	if err != nil {
		return err
	}
	if *load {
		loadResults, err := benchsuite.RunLoad(re, func(r benchsuite.Result) {
			// Distinct line shape: these are service-level measurements,
			// not benchstat input.
			fmt.Fprintf(out, "%s\t%d req\t%.1f req/s\tp50 %s\tp99 %s\n",
				r.Name, r.N, r.ThroughputRPS, nsString(r.P50Ns), nsString(r.P99Ns))
		})
		if err != nil {
			return err
		}
		results = append(results, loadResults...)
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark matches filter %q", *filter)
	}
	if *check {
		// Shared-runner noise damping: a benchmark that appears to
		// regress is re-run up to retryRounds times and judged on its
		// best measurement (minimum ns/op and p99, maximum throughput) —
		// a real regression stays bad on every round, a scheduling
		// hiccup does not. Allocation counts are deterministic and never
		// retried into passing.
		const retryRounds = 2
		for round := 0; round < retryRounds; round++ {
			_, slow, _ := compareResults(results, base.Benchmarks, *threshold, *sloThreshold, missOK)
			if len(slow) == 0 {
				break
			}
			fmt.Fprintf(out, "retrying %d apparent regression(s) (round %d/%d)\n", len(slow), round+1, retryRounds)
			rerun, err := rerunNames(results, slow)
			if err != nil {
				return err
			}
			results = takeBest(results, rerun)
		}
		lines, _, failures := compareResults(results, base.Benchmarks, *threshold, *sloThreshold, missOK)
		for _, l := range lines {
			fmt.Fprintln(out, l)
		}
		if len(failures) > 0 {
			return fmt.Errorf("bench regression: %s", strings.Join(failures, "; "))
		}
		fmt.Fprintf(out, "check passed: %d benchmarks within %.0f%% of baseline (service SLO %.0f%%)\n",
			len(results), *threshold, *sloThreshold)
		return nil
	}
	snap := snapshot{
		Schema:     "bwshare-bench/v1",
		PR:         *pr,
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: results,
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (%d benchmarks)\n", path, len(results))
	return nil
}

// loadBaseline resolves, reads and validates the -check baseline
// snapshot, printing a header that names exactly which file the run is
// judged against. Missing, malformed or (post-filter) empty baselines
// are hard errors: a gate with nothing to compare must fail loudly, not
// pass trivially.
func loadBaseline(path string, re *regexp.Regexp, load bool, out io.Writer) (*snapshot, error) {
	if path == "" {
		n := nextPR(".") - 1
		if n < 1 {
			wd, _ := os.Getwd()
			return nil, fmt.Errorf("-check: no BENCH_<n>.json baseline found in %s (run bwbench to write one, or pass -baseline)", wd)
		}
		path = fmt.Sprintf("BENCH_%d.json", n)
	}
	abs, err := filepath.Abs(path)
	if err != nil {
		abs = path
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("-check: baseline %s: %w", abs, err)
	}
	base := new(snapshot)
	if err := json.Unmarshal(data, base); err != nil {
		return nil, fmt.Errorf("-check: parsing baseline %s: %w", abs, err)
	}
	if base.Schema != "bwshare-bench/v1" {
		return nil, fmt.Errorf("-check: baseline %s has schema %q, want \"bwshare-bench/v1\"", abs, base.Schema)
	}
	var kept []benchsuite.Result
	for _, b := range base.Benchmarks {
		// A -filter subset run is only judged against the matching
		// baseline entries, and -load=false takes the baseline's
		// service-level entries out of scope too; out of scope is not
		// missing.
		if re != nil && !re.MatchString(b.Name) {
			continue
		}
		if !load && isLoadEntry(b) {
			continue
		}
		kept = append(kept, b)
	}
	if len(kept) == 0 {
		return nil, fmt.Errorf("-check: baseline %s has no benchmarks in scope — nothing to gate against", abs)
	}
	base.Benchmarks = kept
	fmt.Fprintf(out, "checking against baseline %s (PR %d, %s %s/%s, %d benchmarks in scope)\n",
		abs, base.PR, base.Go, base.GOOS, base.GOARCH, len(kept))
	return base, nil
}

// isLoadEntry reports whether a result is a service-level load entry,
// gated on SLOs instead of ns/op and allocations.
func isLoadEntry(r benchsuite.Result) bool { return r.ThroughputRPS > 0 }

// nsString renders a nanosecond count as a duration.
func nsString(ns float64) string { return time.Duration(ns).String() }

// compareResults checks a fresh run against a baseline snapshot.
//
// Function-level benchmarks fail when ns/op exceeds the baseline by
// more than thresholdPct percent, or when they allocate at all while
// the baseline was zero-alloc (the zero-allocation suites are a hard
// invariant, not a noisy measurement).
//
// Service-level load entries (isLoadEntry) are held to SLO gates
// instead: throughput must not drop more than sloPct percent below the
// baseline, and p99 latency must not blow out more than sloPct percent
// above it.
//
// Benchmarks missing from the baseline are reported as new and skipped,
// so adding a suite entry never breaks the gate — but a baseline
// benchmark absent from the fresh run fails it: a deleted or renamed
// suite entry would otherwise silently drop its regression coverage.
// missOK, when non-nil, exempts matching baseline names from that
// missing-entry failure (the -ignore-missing escape hatch for gating
// against a snapshot that predates an intentional suite change).
// slow lists the names failing only the noise-prone timing checks
// (ns/op, throughput, p99), so the caller can retry them.
func compareResults(cur, base []benchsuite.Result, thresholdPct, sloPct float64, missOK *regexp.Regexp) (lines, slow, failures []string) {
	baseByName := make(map[string]benchsuite.Result, len(base))
	for _, b := range base {
		baseByName[b.Name] = b
	}
	curByName := make(map[string]bool, len(cur))
	for _, c := range cur {
		curByName[c.Name] = true
	}
	for _, b := range base {
		if !curByName[b.Name] {
			if missOK != nil && missOK.MatchString(b.Name) {
				lines = append(lines, fmt.Sprintf("  %-40s missing from this run (exempted by -ignore-missing)", b.Name))
				continue
			}
			lines = append(lines, fmt.Sprintf("  %-40s MISSING from this run (deleted or renamed?)", b.Name))
			failures = append(failures, fmt.Sprintf("%s present in baseline but missing from this run", b.Name))
		}
	}
	for _, c := range cur {
		b, ok := baseByName[c.Name]
		if !ok {
			lines = append(lines, fmt.Sprintf("  %-40s new in this tree, no baseline (skipped)", c.Name))
			continue
		}
		if isLoadEntry(b) && isLoadEntry(c) {
			l, s, f := compareLoad(c, b, sloPct)
			lines = append(lines, l)
			slow = append(slow, s...)
			failures = append(failures, f...)
			continue
		}
		delta := 0.0
		if b.NsPerOp > 0 {
			delta = (c.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		}
		status := "ok"
		if delta > thresholdPct {
			status = "REGRESSION"
			slow = append(slow, c.Name)
			failures = append(failures, fmt.Sprintf("%s ns/op +%.1f%% (limit +%.0f%%)", c.Name, delta, thresholdPct))
		}
		if b.AllocsPerOp == 0 && c.AllocsPerOp > 0 {
			status = "ALLOC REGRESSION"
			failures = append(failures, fmt.Sprintf("%s allocates %d/op, baseline was zero-alloc", c.Name, c.AllocsPerOp))
		}
		lines = append(lines, fmt.Sprintf("  %-40s ns/op %10.1f -> %10.1f (%+6.1f%%)  allocs %3d -> %3d  %s",
			c.Name, b.NsPerOp, c.NsPerOp, delta, b.AllocsPerOp, c.AllocsPerOp, status))
	}
	return lines, slow, failures
}

// compareLoad applies the service-level SLO gates to one load entry.
func compareLoad(c, b benchsuite.Result, sloPct float64) (line string, slow, failures []string) {
	tputDelta := 0.0
	if b.ThroughputRPS > 0 {
		tputDelta = (c.ThroughputRPS - b.ThroughputRPS) / b.ThroughputRPS * 100
	}
	p99Delta := 0.0
	if b.P99Ns > 0 {
		p99Delta = (c.P99Ns - b.P99Ns) / b.P99Ns * 100
	}
	status := "ok"
	if tputDelta < -sloPct {
		status = "SLO THROUGHPUT"
		slow = append(slow, c.Name)
		failures = append(failures, fmt.Sprintf("%s throughput %.1f%% below baseline (floor -%.0f%%)", c.Name, -tputDelta, sloPct))
	}
	if p99Delta > sloPct {
		status = "SLO P99"
		slow = append(slow, c.Name)
		failures = append(failures, fmt.Sprintf("%s p99 +%.1f%% over baseline (ceiling +%.0f%%)", c.Name, p99Delta, sloPct))
	}
	line = fmt.Sprintf("  %-40s req/s %8.1f -> %8.1f (%+6.1f%%)  p99 %10s -> %10s (%+6.1f%%)  %s",
		c.Name, b.ThroughputRPS, c.ThroughputRPS, tputDelta, nsString(b.P99Ns), nsString(c.P99Ns), p99Delta, status)
	return line, slow, failures
}

// rerunNames re-measures exactly the named benchmarks, routing each to
// the suite it came from (function-level vs service-level).
func rerunNames(results []benchsuite.Result, names []string) ([]benchsuite.Result, error) {
	loadEntry := make(map[string]bool, len(results))
	for _, r := range results {
		loadEntry[r.Name] = isLoadEntry(r)
	}
	var benchNames, loadNames []string
	for _, n := range names {
		if loadEntry[n] {
			loadNames = append(loadNames, n)
		} else {
			benchNames = append(benchNames, n)
		}
	}
	var rerun []benchsuite.Result
	if len(benchNames) > 0 {
		got, err := benchsuite.Run(nameFilter(benchNames), nil)
		if err != nil {
			return nil, err
		}
		rerun = append(rerun, got...)
	}
	if len(loadNames) > 0 {
		got, err := benchsuite.RunLoad(nameFilter(loadNames), nil)
		if err != nil {
			return nil, err
		}
		rerun = append(rerun, got...)
	}
	return rerun, nil
}

// nameFilter builds a regexp matching exactly the given benchmark names.
func nameFilter(names []string) *regexp.Regexp {
	quoted := make([]string, len(names))
	for i, n := range names {
		quoted[i] = regexp.QuoteMeta(n)
	}
	return regexp.MustCompile("^(" + strings.Join(quoted, "|") + ")$")
}

// takeBest folds rerun measurements into results, keeping the best of
// each noise-prone metric (minimum ns/op and latency percentiles,
// maximum throughput) — best-of-N judgement for retries. Deterministic
// fields (allocations) are never replaced.
func takeBest(results, rerun []benchsuite.Result) []benchsuite.Result {
	byName := make(map[string]benchsuite.Result, len(rerun))
	for _, r := range rerun {
		byName[r.Name] = r
	}
	for i, r := range results {
		nr, ok := byName[r.Name]
		if !ok {
			continue
		}
		if isLoadEntry(r) {
			if nr.ThroughputRPS > r.ThroughputRPS {
				results[i].ThroughputRPS = nr.ThroughputRPS
			}
			if nr.NsPerOp < r.NsPerOp {
				results[i].NsPerOp = nr.NsPerOp
			}
			if nr.P50Ns < r.P50Ns {
				results[i].P50Ns = nr.P50Ns
			}
			if nr.P95Ns < r.P95Ns {
				results[i].P95Ns = nr.P95Ns
			}
			if nr.P99Ns < r.P99Ns {
				results[i].P99Ns = nr.P99Ns
			}
		} else if nr.NsPerOp < r.NsPerOp {
			results[i] = nr
		}
	}
	return results
}

// nextPR returns one past the highest BENCH_<n>.json in dir, so an
// unnumbered run extends the trajectory instead of overwriting an
// earlier snapshot. An empty dir starts at 1.
func nextPR(dir string) int {
	matches, _ := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	high := 0
	for _, m := range matches {
		base := filepath.Base(m)
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(base, "BENCH_"), ".json"))
		if err == nil && n > high {
			high = n
		}
	}
	return high + 1
}
