// Command bwbench runs the canonical hot-path benchmark suite
// (internal/benchsuite) and writes a machine-readable perf snapshot,
// giving every PR a benchmark trajectory to compare against.
//
// Output is a JSON file (BENCH_<pr>.json by default):
//
//	{
//	  "schema": "bwshare-bench/v1",
//	  "pr": 2,
//	  "go": "go1.24.0", "goos": "linux", "goarch": "amd64",
//	  "benchmarks": [
//	    {"name": "WaterFill/opt/32", "n": 123, "ns_per_op": 4567.8,
//	     "bytes_per_op": 0, "allocs_per_op": 0},
//	    ...
//	  ]
//	}
//
// While running, standard Go benchmark lines are printed to stdout
// ("BenchmarkX-8  N  ns/op  B/op  allocs/op"), so piping a few runs into
// benchstat works exactly like `go test -bench`.
//
// Usage:
//
//	bwbench                          # full suite -> next free BENCH_<n>.json
//	bwbench -pr 3                    # -> BENCH_3.json (overwrites)
//	bwbench -out /tmp/b.json         # explicit path
//	bwbench -filter 'WaterFill'      # subset by regexp
//	bwbench -list                    # print benchmark names and exit
//	bwbench -check                   # regression gate vs latest snapshot
//	bwbench -check -baseline BENCH_2.json -threshold 25
//
// Without -pr, the snapshot number is one past the highest committed
// BENCH_<n>.json, so a plain run never overwrites an earlier PR's
// trajectory point.
//
// With -check, no snapshot is written: the suite runs and is compared
// against the baseline snapshot (the highest committed BENCH_<n>.json by
// default). The run fails if any benchmark regresses by more than
// -threshold percent ns/op, or allocates at all where the baseline was
// zero-alloc. Benchmarks new in this tree (absent from the baseline) are
// reported and skipped. This is the CI bench-regression gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"

	"bwshare/internal/benchsuite"
)

// snapshot is the BENCH_<n>.json document.
type snapshot struct {
	Schema     string              `json:"schema"`
	PR         int                 `json:"pr"`
	Go         string              `json:"go"`
	GOOS       string              `json:"goos"`
	GOARCH     string              `json:"goarch"`
	Benchmarks []benchsuite.Result `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bwbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bwbench", flag.ContinueOnError)
	fs.SetOutput(out)
	pr := fs.Int("pr", 0, "PR number, names the output file BENCH_<pr>.json (0 = one past the highest existing snapshot)")
	outPath := fs.String("out", "", "output path (default BENCH_<pr>.json)")
	filter := fs.String("filter", "", "regexp selecting a benchmark subset")
	list := fs.Bool("list", false, "list benchmark names and exit")
	check := fs.Bool("check", false, "compare against a baseline snapshot instead of writing one; fail on regression")
	baseline := fs.String("baseline", "", "baseline snapshot for -check (default: highest BENCH_<n>.json in the working directory)")
	threshold := fs.Float64("threshold", 25, "ns/op regression tolerance for -check, in percent")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, bm := range benchsuite.Suite() {
			fmt.Fprintln(out, bm.Name)
		}
		return nil
	}
	var re *regexp.Regexp
	if *filter != "" {
		var err error
		if re, err = regexp.Compile(*filter); err != nil {
			return fmt.Errorf("bad -filter: %w", err)
		}
	}
	if *pr == 0 {
		*pr = nextPR(".")
	}
	path := *outPath
	if path == "" {
		path = fmt.Sprintf("BENCH_%d.json", *pr)
	}
	var base *snapshot
	if *check {
		basePath := *baseline
		if basePath == "" {
			n := nextPR(".") - 1
			if n < 1 {
				return fmt.Errorf("-check: no BENCH_<n>.json baseline in the working directory")
			}
			basePath = fmt.Sprintf("BENCH_%d.json", n)
		}
		data, err := os.ReadFile(basePath)
		if err != nil {
			return fmt.Errorf("-check: %w", err)
		}
		base = new(snapshot)
		if err := json.Unmarshal(data, base); err != nil {
			return fmt.Errorf("-check: parsing %s: %w", basePath, err)
		}
		if re != nil {
			// A -filter subset run is only judged against the matching
			// baseline entries; the rest are out of scope, not missing.
			var kept []benchsuite.Result
			for _, b := range base.Benchmarks {
				if re.MatchString(b.Name) {
					kept = append(kept, b)
				}
			}
			base.Benchmarks = kept
		}
		fmt.Fprintf(out, "checking against %s (PR %d, %s %s/%s)\n",
			basePath, base.PR, base.Go, base.GOOS, base.GOARCH)
	}
	results, err := benchsuite.Run(re, func(r benchsuite.Result) {
		// go-test-style line: benchstat-compatible.
		fmt.Fprintf(out, "Benchmark%s-%d\t%d\t%.1f ns/op\t%d B/op\t%d allocs/op\n",
			r.Name, runtime.GOMAXPROCS(0), r.N, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	})
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark matches filter %q", *filter)
	}
	if *check {
		// Shared-runner noise damping: a benchmark that appears to
		// regress is re-run up to retryRounds times and judged on its
		// best (minimum) ns/op — a real regression stays slow on every
		// round, a scheduling hiccup does not. Allocation counts are
		// deterministic and never retried into passing.
		const retryRounds = 2
		for round := 0; round < retryRounds; round++ {
			_, slow, _ := compareResults(results, base.Benchmarks, *threshold)
			if len(slow) == 0 {
				break
			}
			fmt.Fprintf(out, "retrying %d apparent regression(s) (round %d/%d)\n", len(slow), round+1, retryRounds)
			rerun, err := benchsuite.Run(nameFilter(slow), nil)
			if err != nil {
				return err
			}
			results = takeMin(results, rerun)
		}
		lines, _, failures := compareResults(results, base.Benchmarks, *threshold)
		for _, l := range lines {
			fmt.Fprintln(out, l)
		}
		if len(failures) > 0 {
			return fmt.Errorf("bench regression: %s", strings.Join(failures, "; "))
		}
		fmt.Fprintf(out, "check passed: %d benchmarks within %.0f%% of baseline\n", len(results), *threshold)
		return nil
	}
	snap := snapshot{
		Schema:     "bwshare-bench/v1",
		PR:         *pr,
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: results,
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (%d benchmarks)\n", path, len(results))
	return nil
}

// compareResults checks a fresh run against a baseline snapshot. A
// benchmark fails when its ns/op exceeds the baseline by more than
// thresholdPct percent, or when it allocates at all while the baseline
// was zero-alloc (the zero-allocation suites are a hard invariant, not a
// noisy measurement). Benchmarks missing from the baseline are reported
// as new and skipped, so adding a suite entry never breaks the gate —
// but a baseline benchmark absent from the fresh run fails it: a
// deleted or renamed suite entry would otherwise silently drop its
// regression coverage. slow lists the names failing only the
// (noise-prone) ns/op check, so the caller can retry them.
func compareResults(cur, base []benchsuite.Result, thresholdPct float64) (lines, slow, failures []string) {
	baseByName := make(map[string]benchsuite.Result, len(base))
	for _, b := range base {
		baseByName[b.Name] = b
	}
	curByName := make(map[string]bool, len(cur))
	for _, c := range cur {
		curByName[c.Name] = true
	}
	for _, b := range base {
		if !curByName[b.Name] {
			lines = append(lines, fmt.Sprintf("  %-40s MISSING from this run (deleted or renamed?)", b.Name))
			failures = append(failures, fmt.Sprintf("%s present in baseline but missing from this run", b.Name))
		}
	}
	for _, c := range cur {
		b, ok := baseByName[c.Name]
		if !ok {
			lines = append(lines, fmt.Sprintf("  %-40s new in this tree, no baseline (skipped)", c.Name))
			continue
		}
		delta := 0.0
		if b.NsPerOp > 0 {
			delta = (c.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		}
		status := "ok"
		if delta > thresholdPct {
			status = "REGRESSION"
			slow = append(slow, c.Name)
			failures = append(failures, fmt.Sprintf("%s ns/op +%.1f%% (limit +%.0f%%)", c.Name, delta, thresholdPct))
		}
		if b.AllocsPerOp == 0 && c.AllocsPerOp > 0 {
			status = "ALLOC REGRESSION"
			failures = append(failures, fmt.Sprintf("%s allocates %d/op, baseline was zero-alloc", c.Name, c.AllocsPerOp))
		}
		lines = append(lines, fmt.Sprintf("  %-40s ns/op %10.1f -> %10.1f (%+6.1f%%)  allocs %3d -> %3d  %s",
			c.Name, b.NsPerOp, c.NsPerOp, delta, b.AllocsPerOp, c.AllocsPerOp, status))
	}
	return lines, slow, failures
}

// nameFilter builds a regexp matching exactly the given benchmark names.
func nameFilter(names []string) *regexp.Regexp {
	quoted := make([]string, len(names))
	for i, n := range names {
		quoted[i] = regexp.QuoteMeta(n)
	}
	return regexp.MustCompile("^(" + strings.Join(quoted, "|") + ")$")
}

// takeMin replaces entries of results with their rerun counterparts when
// the rerun measured a lower ns/op (best-of-N judgement for retries).
func takeMin(results, rerun []benchsuite.Result) []benchsuite.Result {
	byName := make(map[string]benchsuite.Result, len(rerun))
	for _, r := range rerun {
		byName[r.Name] = r
	}
	for i, r := range results {
		if nr, ok := byName[r.Name]; ok && nr.NsPerOp < r.NsPerOp {
			results[i] = nr
		}
	}
	return results
}

// nextPR returns one past the highest BENCH_<n>.json in dir, so an
// unnumbered run extends the trajectory instead of overwriting an
// earlier snapshot. An empty dir starts at 1.
func nextPR(dir string) int {
	matches, _ := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	high := 0
	for _, m := range matches {
		base := filepath.Base(m)
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(base, "BENCH_"), ".json"))
		if err == nil && n > high {
			high = n
		}
	}
	return high + 1
}
