// Command bwhpl generates Linpack (HPL) application traces with the
// paper's ring communication scheme and replays them: measured on a
// substrate, predicted with the matching model, per placement strategy
// (Figures 8-9 pipeline).
//
// Usage:
//
//	bwhpl -gen trace.jsonl -n 20500 -tasks 16        # write a trace
//	bwhpl -net myrinet -sched rrn                    # full evaluation
//	bwhpl -net gige -sched random -seed 7 -n 10000
//	bwhpl -net myrinet -trace trace.jsonl -sched rrp # replay a file
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"bwshare/internal/cluster"
	"bwshare/internal/core"
	"bwshare/internal/hpl"
	"bwshare/internal/model"
	"bwshare/internal/netsim/gige"
	"bwshare/internal/netsim/infiniband"
	"bwshare/internal/netsim/myrinet"
	"bwshare/internal/predict"
	"bwshare/internal/replay"
	"bwshare/internal/report"
	"bwshare/internal/sched"
	"bwshare/internal/stats"
	"bwshare/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bwhpl:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bwhpl", flag.ContinueOnError)
	gen := fs.String("gen", "", "write the generated trace to this file and exit")
	traceFile := fs.String("trace", "", "replay this trace file instead of generating one")
	n := fs.Int("n", 20500, "HPL problem size N")
	tasks := fs.Int("tasks", 16, "MPI task count")
	nodes := fs.Int("nodes", 8, "cluster node count (2 cores per node)")
	net := fs.String("net", "myrinet", "substrate + model: gige or myrinet")
	strategy := fs.String("sched", "rrn", "placement: rrn, rrp or random")
	seed := fs.Int64("seed", 42, "seed for the random placement")
	jitter := fs.Float64("jitter", 0.35, "per-task compute jitter in [0,1)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var tr *trace.Trace
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err = trace.Read(f)
		if err != nil {
			return err
		}
	} else {
		cfg := hpl.Default(*tasks)
		cfg.N = *n
		cfg.Jitter = *jitter
		var err error
		tr, err = hpl.Generate(cfg)
		if err != nil {
			return err
		}
	}
	if *gen != "" {
		f, err := os.Create(*gen)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.Write(f, tr); err != nil {
			return err
		}
		s := tr.Summary()
		fmt.Fprintf(out, "wrote %s: %d tasks, %d events, %d sends, %.1f GB\n",
			*gen, s.Tasks, s.Events, s.Sends, s.TotalBytes/1e9)
		return nil
	}

	var eng core.Engine
	var mod core.Model
	switch *net {
	case "gige":
		eng, mod = gige.New(gige.DefaultConfig()), model.NewGigE()
	case "myrinet":
		eng, mod = myrinet.New(myrinet.DefaultConfig()), model.NewMyrinet()
	case "infiniband", "ib":
		eng, mod = infiniband.New(infiniband.DefaultConfig()), model.NewInfiniBand()
	default:
		return fmt.Errorf("unknown substrate %q", *net)
	}
	clu := cluster.Default(*nodes)
	place, err := sched.Place(*strategy, clu, tr.NumTasks(), *seed)
	if err != nil {
		return err
	}
	meas, err := replay.Run(eng, clu, place, tr)
	if err != nil {
		return fmt.Errorf("measured replay: %w", err)
	}
	pred, err := replay.Run(predict.NewEngine(mod, eng.RefRate()), clu, place, tr)
	if err != nil {
		return fmt.Errorf("predicted replay: %w", err)
	}
	sm, sp := meas.CommTimes(), pred.CommTimes()
	eabs := stats.TaskAbsErrs(sp, sm)
	fmt.Fprintf(out, "HPL on %s, %d tasks / %d nodes, scheduling %s\n",
		eng.Name(), tr.NumTasks(), *nodes, *strategy)
	t := report.Table{Header: []string{"task", "node", "Sm [s]", "Sp [s]", "Eabs [%]"}}
	for rank := range sm {
		t.AddRow(fmt.Sprint(rank), fmt.Sprint(place[rank]),
			fmt.Sprintf("%.3f", sm[rank]),
			fmt.Sprintf("%.3f", sp[rank]),
			fmt.Sprintf("%.1f", eabs[rank]))
	}
	t.Render(out)
	fmt.Fprintf(out, "  mean Eabs = %.1f%%, max = %.1f%%\n", stats.Mean(eabs), stats.Max(eabs))
	fmt.Fprintf(out, "  makespan: measured %.1f s, predicted %.1f s\n", meas.Makespan, pred.Makespan)
	return nil
}
