package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateAndReplayTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	var sb strings.Builder
	if err := run([]string{"-gen", path, "-n", "2400", "-tasks", "8"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "wrote") {
		t.Fatalf("gen output: %s", sb.String())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := run([]string{"-trace", path, "-net", "myrinet", "-sched", "rrp", "-tasks", "8", "-nodes", "4"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"mean Eabs", "makespan", "Sm [s]"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("missing %q:\n%s", want, sb.String())
		}
	}
}

func TestEvaluateSmall(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-n", "2400", "-tasks", "8", "-nodes", "4", "-net", "gige", "-sched", "random"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "HPL on gige") {
		t.Errorf("output:\n%s", sb.String())
	}
}

func TestErrors(t *testing.T) {
	var sb strings.Builder
	for _, args := range [][]string{
		{"-net", "nope", "-n", "2400", "-tasks", "4", "-nodes", "2"},
		{"-sched", "nope", "-n", "2400", "-tasks", "4", "-nodes", "2"},
		{"-trace", "/nonexistent"},
		{"-n", "0"},
	} {
		if err := run(args, &sb); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}
