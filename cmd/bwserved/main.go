// Command bwserved is the long-running HTTP cluster service: the
// paper's penalty models served over a JSON API (internal/server), with
// a bounded worker pool of reusable simulator sessions, an LRU response
// cache for repeated schemes, and a stateful multi-tenant cluster
// manager (internal/fleet) whose placement engine ranks candidate
// task-to-host mappings by what-if simulation.
//
// Usage:
//
//	bwserved                          # listen on :8080
//	bwserved -addr 127.0.0.1:0        # ephemeral port, printed on stdout
//	bwserved -workers 8 -cache 4096
//	bwserved -request-timeout 5s      # 503 predictions that run longer
//	bwserved -shards 8                # component-parallel simulator sessions
//
// Prediction endpoints: POST /v1/predict, POST /v1/predict/batch,
// GET /v1/predict (catalog schemes), GET /v1/models, GET /v1/schemes,
// GET /v1/healthz, GET /v1/stats. `?format=text` on /v1/predict renders
// exactly the stdout of `bwpredict -model <m> -scheme <s>` — the CI
// smoke step diffs the two. Predict requests may carry a "faults"
// block scheduling link outages, degradations and host slowdowns; the
// prediction then runs on the dynamic fabric (see internal/server for
// the schema). Each request gets -request-timeout (default 30s, batch
// items individually) to queue for a worker and simulate; exceeding it
// returns 503. A non-positive duration disables the deadline.
//
// Cluster endpoints: POST/GET /v1/clusters,
// GET/DELETE /v1/clusters/{name}, POST/GET /v1/clusters/{name}/jobs,
// GET/DELETE /v1/clusters/{name}/jobs/{job}, and
// POST /v1/clusters/{name}/placements to rank placements without
// admitting. See the README's "Cluster API" section for request and
// response examples.
//
// The process shuts down cleanly on SIGINT or SIGTERM, draining in-flight
// requests for up to 5 seconds.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bwshare/internal/server"
)

// shutdownGrace bounds how long a SIGINT/SIGTERM drain may take.
const shutdownGrace = 5 * time.Second

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "bwserved:", err)
		os.Exit(1)
	}
}

// run starts the service and blocks until a fatal serve error or a stop
// signal. stop overrides the OS signal channel in tests; nil installs
// SIGINT/SIGTERM handling.
func run(args []string, out io.Writer, stop <-chan os.Signal) error {
	fs := flag.NewFlagSet("bwserved", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", ":8080", "listen address (host:port, port 0 picks a free port)")
	workers := fs.Int("workers", 0, "concurrent prediction workers (0 = GOMAXPROCS)")
	cache := fs.Int("cache", 0, "response cache capacity in entries (0 = default 1024, negative disables)")
	timeout := fs.Duration("request-timeout", server.DefaultRequestTimeout,
		"per-request deadline for queueing and simulation (503 on exceed; <= 0 disables)")
	shards := fs.Int("shards", 0, "worker shards per simulator session; independent constraint components advance in parallel (0 or 1 = sequential; sharded results are bit-identical across shard counts and within float rounding of sequential)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards < 0 {
		return fmt.Errorf("-shards must be >= 0, got %d", *shards)
	}
	// The flag surface uses <= 0 to disable; the Config field reserves 0
	// for "default" so zero-valued configs stay safe elsewhere.
	rt := *timeout
	if rt <= 0 {
		rt = -1
	}
	s := server.New(server.Config{Workers: *workers, CacheSize: *cache, RequestTimeout: rt, Shards: *shards})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	st := s.Snapshot()
	fmt.Fprintf(out, "bwserved: listening on http://%s (workers=%d, cache=%d entries)\n",
		ln.Addr(), st.Workers, st.CacheCapacity)
	if stop == nil {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sig)
		stop = sig
	}
	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-stop:
		fmt.Fprintln(out, "bwserved: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
