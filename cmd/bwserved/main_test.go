package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is an io.Writer safe for the run goroutine + test polling.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

// startServed runs bwserved on an ephemeral port and returns its base
// URL plus a shutdown function that waits for a clean exit.
func startServed(t *testing.T, args ...string) (string, func() error) {
	t.Helper()
	var out syncBuffer
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(append([]string{"-addr", "127.0.0.1:0"}, args...), &out, stop)
	}()
	deadline := time.Now().Add(10 * time.Second)
	var url string
	for url == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server did not announce its address; output:\n%s", out.String())
		}
		s := out.String()
		if i := strings.Index(s, "listening on http://"); i >= 0 {
			rest := s[i+len("listening on http://"):]
			if j := strings.IndexAny(rest, " \n"); j >= 0 {
				url = "http://" + rest[:j]
			}
		}
		select {
		case err := <-done:
			t.Fatalf("server exited early: %v; output:\n%s", err, out.String())
		case <-time.After(5 * time.Millisecond):
		}
	}
	return url, func() error {
		stop <- os.Interrupt
		select {
		case err := <-done:
			return err
		case <-time.After(10 * time.Second):
			return fmt.Errorf("shutdown timed out")
		}
	}
}

func TestServeAndShutdown(t *testing.T) {
	url, shutdown := startServed(t, "-workers", "2", "-cache", "16")
	resp, err := http.Get(url + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Errorf("healthz: %d %s", resp.StatusCode, body)
	}
	resp, err = http.Get(url + "/v1/predict?name=s4&model=gige")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "\"comms\"") {
		t.Errorf("predict: %d %s", resp.StatusCode, body)
	}
	if err := shutdown(); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

// TestRequestTimeoutFlag: the flag survives flag parsing (including the
// disabled form) and a faulted prediction still serves under it.
func TestRequestTimeoutFlag(t *testing.T) {
	url, shutdown := startServed(t, "-request-timeout", "0s")
	body := `{"name":"s4","model":"gige","faults":[{"kind":"host_slow","host":0,"factor":0.5,"at":0}]}`
	resp, err := http.Post(url+"/v1/predict", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(out), "\"comms\"") {
		t.Errorf("faulted predict: %d %s", resp.StatusCode, out)
	}
	if err := shutdown(); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	var out syncBuffer
	if err := run([]string{"-addr", "not-an-address"}, &out, nil); err == nil {
		t.Error("bad address should error")
	}
	if err := run([]string{"-bogus-flag"}, &out, nil); err == nil {
		t.Error("unknown flag should error")
	}
}
