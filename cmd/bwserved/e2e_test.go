package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestE2EByteIdenticalWithBwpredict is the acceptance e2e: it builds the
// real bwserved and bwpredict binaries, starts the server, and checks
// that /v1/predict?format=text is byte-identical to bwpredict's stdout
// for catalog schemes across models — the same diff the CI smoke step
// performs with curl.
func TestE2EByteIdenticalWithBwpredict(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin, "./cmd/bwserved", "./cmd/bwpredict")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	served := exec.Command(filepath.Join(bin, "bwserved"), "-addr", "127.0.0.1:0")
	stdout, err := served.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	served.Stderr = served.Stdout
	if err := served.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		served.Process.Kill()
		served.Wait()
	})
	base := readBaseURL(t, stdout)

	for _, tc := range []struct {
		scheme, model string
		static        bool
	}{
		{"s4", "gige", false},
		{"s6", "gige", true},
		{"mk2", "myrinet", false},
		{"fig5", "myrinet", false},
		{"fig4", "infiniband", false},
		{"mk1", "kimlee", false},
	} {
		args := []string{"-model", tc.model, "-scheme", tc.scheme}
		url := fmt.Sprintf("%s/v1/predict?format=text&name=%s&model=%s", base, tc.scheme, tc.model)
		if tc.static {
			args = append(args, "-static")
			url += "&static=true"
		}
		cli := exec.Command(filepath.Join(bin, "bwpredict"), args...)
		want, err := cli.Output()
		if err != nil {
			t.Fatalf("bwpredict %v: %v", args, err)
		}
		// Twice: the second response comes from the cache and must not
		// differ by a byte either.
		for pass, label := range []string{"uncached", "cached"} {
			resp, err := http.Get(url)
			if err != nil {
				t.Fatal(err)
			}
			got, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s: status %d: %s", url, resp.StatusCode, got)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s/%s pass %d (%s): server text differs from bwpredict\n got: %q\nwant: %q",
					tc.scheme, tc.model, pass, label, got, want)
			}
		}
	}
}

// readBaseURL scans bwserved's stdout for the listen announcement.
func readBaseURL(t *testing.T, r io.Reader) string {
	t.Helper()
	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(r)
		for sc.Scan() {
			if i := strings.Index(sc.Text(), "listening on "); i >= 0 {
				fields := strings.Fields(sc.Text()[i+len("listening on "):])
				if len(fields) > 0 {
					lines <- fields[0]
					return
				}
			}
		}
		close(lines)
	}()
	select {
	case url, ok := <-lines:
		if !ok {
			t.Fatal("bwserved exited without announcing an address")
		}
		return url
	case <-time.After(15 * time.Second):
		t.Fatal("timed out waiting for bwserved to listen")
	}
	return ""
}
