// Command bwpredict predicts per-communication times and penalties for a
// scheme with one of the paper's models, using the progressive simulator
// of Section VI-A (or the static formulas with -static).
//
// Usage:
//
//	bwpredict -model myrinet -scheme mk2
//	bwpredict -model gige -file myscheme.txt -static
//	bwpredict -model gige -scheme s5 -compare   # side by side with substrate
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"bwshare/internal/core"
	"bwshare/internal/graph"
	"bwshare/internal/measure"
	"bwshare/internal/model"
	"bwshare/internal/netsim/gige"
	"bwshare/internal/netsim/infiniband"
	"bwshare/internal/netsim/myrinet"
	"bwshare/internal/predict"
	"bwshare/internal/report"
	"bwshare/internal/schemelang"
	"bwshare/internal/schemes"
	"bwshare/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bwpredict:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bwpredict", flag.ContinueOnError)
	modelName := fs.String("model", "gige", "penalty model: gige, myrinet, infiniband, kimlee, linear")
	schemeName := fs.String("scheme", "", "named scheme: "+strings.Join(schemes.Names(), ", "))
	file := fs.String("file", "", "scheme description file ('-' for stdin)")
	static := fs.Bool("static", false, "use the static formulas instead of the progressive simulator")
	compare := fs.Bool("compare", false, "also run the matching substrate and print errors")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := loadScheme(*schemeName, *file)
	if err != nil {
		return err
	}
	m, sub, err := modelByName(*modelName)
	if err != nil {
		return err
	}
	ref := sub.RefRate()
	var times []float64
	if *static {
		times = predict.StaticTimes(g, m, ref)
	} else {
		times = predict.Times(g, m, ref)
	}
	pen := m.Penalties(g)
	header := []string{"comm", "src", "dst", "static penalty", "time [s]"}
	var meas measure.Result
	if *compare {
		meas = measure.Run(sub, g)
		header = append(header, "measured [s]", "Erel [%]")
	}
	fmt.Fprintf(out, "model %s (progressive=%v), ref rate %.1f MB/s\n", m.Name(), !*static, ref/1e6)
	t := report.Table{Header: header}
	for _, c := range g.Comms() {
		row := []string{
			c.Label, fmt.Sprint(c.Src), fmt.Sprint(c.Dst),
			fmt.Sprintf("%.3f", pen[c.ID]),
			fmt.Sprintf("%.4f", times[c.ID]),
		}
		if *compare {
			row = append(row,
				fmt.Sprintf("%.4f", meas.Times[c.ID]),
				fmt.Sprintf("%+.1f", stats.RelErr(times[c.ID], meas.Times[c.ID])))
		}
		t.AddRow(row...)
	}
	t.Render(out)
	if *compare {
		fmt.Fprintf(out, "  Eabs = %.1f%%\n", stats.AbsErr(times, meas.Times))
	}
	return nil
}

func loadScheme(name, file string) (*graph.Graph, error) {
	switch {
	case name != "" && file != "":
		return nil, fmt.Errorf("use either -scheme or -file, not both")
	case name != "":
		g, ok := schemes.Named(name)
		if !ok {
			return nil, fmt.Errorf("unknown scheme %q", name)
		}
		return g, nil
	case file == "-":
		src, err := io.ReadAll(os.Stdin)
		if err != nil {
			return nil, err
		}
		return schemelang.Parse(string(src))
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return schemelang.Parse(string(src))
	default:
		return nil, fmt.Errorf("need -scheme <name> or -file <path>")
	}
}

// modelByName returns the model and its matching substrate (used for the
// reference rate and -compare).
func modelByName(name string) (core.Model, core.Engine, error) {
	switch name {
	case "gige":
		return model.NewGigE(), gige.New(gige.DefaultConfig()), nil
	case "myrinet":
		return model.NewMyrinet(), myrinet.New(myrinet.DefaultConfig()), nil
	case "infiniband", "ib":
		return model.NewInfiniBand(), infiniband.New(infiniband.DefaultConfig()), nil
	case "kimlee":
		return model.KimLee{}, gige.New(gige.DefaultConfig()), nil
	case "linear":
		return model.Linear{}, gige.New(gige.DefaultConfig()), nil
	default:
		return nil, nil, fmt.Errorf("unknown model %q", name)
	}
}
