// Command bwpredict predicts per-communication times and penalties for a
// scheme with one of the paper's models, using the progressive simulator
// of Section VI-A (or the static formulas with -static).
//
// Usage:
//
//	bwpredict -model myrinet -scheme mk2
//	bwpredict -model gige -file myscheme.txt -static
//	bwpredict -model gige -scheme s5 -compare   # side by side with substrate
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"bwshare/internal/graph"
	"bwshare/internal/measure"
	"bwshare/internal/predict"
	"bwshare/internal/report"
	"bwshare/internal/schemelang"
	"bwshare/internal/schemes"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bwpredict:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bwpredict", flag.ContinueOnError)
	modelName := fs.String("model", "gige", "penalty model: gige, myrinet, infiniband, kimlee, linear")
	schemeName := fs.String("scheme", "", "named scheme: "+strings.Join(schemes.Names(), ", "))
	file := fs.String("file", "", "scheme description file ('-' for stdin)")
	static := fs.Bool("static", false, "use the static formulas instead of the progressive simulator")
	compare := fs.Bool("compare", false, "also run the matching substrate and print errors")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := loadScheme(*schemeName, *file)
	if err != nil {
		return err
	}
	m, sub, err := predict.LookupModel(*modelName)
	if err != nil {
		return err
	}
	ref := sub.RefRate()
	sess := predict.NewSession(m, ref)
	// Penalties first: times points into session scratch, which is only
	// valid until the next Session call.
	pen := sess.StaticPenalties(g)
	var times []float64
	if *static {
		times = sess.StaticTimes(g)
	} else {
		times = sess.Times(g)
	}
	var meas []float64
	if *compare {
		meas = measure.Run(sub, g).Times
	}
	report.PredictionText(out, m.Name(), !*static, ref, g, pen, times, meas)
	return nil
}

func loadScheme(name, file string) (*graph.Graph, error) {
	switch {
	case name != "" && file != "":
		return nil, fmt.Errorf("use either -scheme or -file, not both")
	case name != "":
		g, ok := schemes.Named(name)
		if !ok {
			return nil, fmt.Errorf("unknown scheme %q", name)
		}
		return g, nil
	case file == "-":
		src, err := io.ReadAll(os.Stdin)
		if err != nil {
			return nil, err
		}
		return schemelang.Parse(string(src))
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return schemelang.Parse(string(src))
	default:
		return nil, fmt.Errorf("need -scheme <name> or -file <path>")
	}
}
