// Command bwpredict predicts per-communication times and penalties for a
// scheme with one of the paper's models, using the progressive simulator
// of Section VI-A (or the static formulas with -static).
//
// Usage:
//
//	bwpredict -model myrinet -scheme mk2
//	bwpredict -model gige -file myscheme.txt -static
//	bwpredict -model gige -scheme s5 -compare   # side by side with substrate
//	bwpredict -model gige -scheme s6 -topology "fattree 2x4 oversub 4"
//	bwpredict -model gige -scheme s5 -shards 8  # component-parallel simulation
//
// A scheme file may declare its fabric with a 'topology:' header
// instead of the -topology flag (not both). On a multi-switch fabric
// the report gains a per-uplink utilization table. 'fault:' headers
// degrade the fabric mid-replay (see the schemelang package doc); the
// prediction then runs on the dynamic, faulted fabric.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"bwshare/internal/core"
	"bwshare/internal/fault"
	"bwshare/internal/graph"
	"bwshare/internal/measure"
	"bwshare/internal/predict"
	"bwshare/internal/report"
	"bwshare/internal/schemelang"
	"bwshare/internal/schemes"
	"bwshare/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bwpredict:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bwpredict", flag.ContinueOnError)
	modelName := fs.String("model", "gige", "penalty model: gige, myrinet, infiniband, kimlee, linear")
	schemeName := fs.String("scheme", "", "named scheme: "+strings.Join(schemes.Names(), ", "))
	file := fs.String("file", "", "scheme description file ('-' for stdin)")
	static := fs.Bool("static", false, "use the static formulas instead of the progressive simulator")
	compare := fs.Bool("compare", false, "also run the matching substrate and print errors")
	refFlag := fs.Float64("ref", 0, "reference rate override in bytes/second (0 = substrate default)")
	topoFlag := fs.String("topology", "", `switch fabric, e.g. "fattree 2x4 oversub 2" (default: the scheme's header, or a crossbar)`)
	shards := fs.Int("shards", 0, "worker shards for the progressive simulator; independent constraint components advance in parallel (0 or 1 = sequential; sharded results are bit-identical across shard counts and within float rounding of sequential)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards < 0 {
		return fmt.Errorf("-shards must be >= 0, got %d", *shards)
	}
	// Flag parsing happily produces negative, NaN and ±Inf floats;
	// reject them here instead of predicting garbage penalties.
	if !core.ValidRefRate(*refFlag) {
		return fmt.Errorf("-ref must be a positive finite rate in bytes/second, got %g", *refFlag)
	}
	g, topo, sched, err := loadScheme(*schemeName, *file)
	if err != nil {
		return err
	}
	if *topoFlag != "" {
		if !topo.Trivial() {
			return fmt.Errorf("the scheme file already declares topology %q; drop -topology", topo)
		}
		if topo, err = topology.ParseSpec(*topoFlag); err != nil {
			return err
		}
		if err := topo.CheckFit(g.MaxNode()); err != nil {
			return err
		}
		// Link faults were already validated against the file's own
		// (trivial) fabric at parse time; a file that degrades uplinks
		// must declare its fabric in the same file.
	}
	if !topo.Trivial() && *static {
		return fmt.Errorf("-static is crossbar-only (the static formulas cannot see the fabric); drop -static or the topology")
	}
	if !sched.Empty() && *static {
		return fmt.Errorf("-static cannot model faults (the static formulas have no clock); drop -static or the fault: headers")
	}
	m, sub, err := predict.LookupModel(*modelName)
	if err != nil {
		return err
	}
	ref := *refFlag
	if ref == 0 {
		ref = sub.RefRate()
	}
	if !sched.Empty() && *compare {
		return fmt.Errorf("-compare measures the healthy substrate; drop -compare or the fault: headers")
	}
	var sess *predict.Session
	switch {
	case *shards > 1:
		if sess, err = predict.NewSessionParallel(m, ref, topo, sched, *shards); err != nil {
			return err
		}
	case sched.Empty():
		sess = predict.NewSessionWithTopology(m, ref, topo)
	default:
		if sess, err = predict.NewSessionWithFaults(m, ref, topo, sched); err != nil {
			return err
		}
	}
	// Penalties first: times points into session scratch, which is only
	// valid until the next Session call.
	pen := sess.StaticPenalties(g)
	var times []float64
	if *static {
		times = sess.StaticTimes(g)
	} else {
		times = sess.Times(g)
	}
	var meas []float64
	if *compare {
		if !topo.Trivial() {
			return fmt.Errorf("-compare with -topology is not supported yet (the catalog substrates are crossbar-calibrated)")
		}
		if *refFlag != 0 {
			// The substrate always measures at its calibrated rate; error
			// columns against a prediction at a different rate would
			// quantify the rate mismatch, not the model.
			return fmt.Errorf("-compare uses the substrate's calibrated rate; drop -ref")
		}
		meas = measure.Run(sub, g).Times
	}
	report.PredictionText(out, m.Name(), !*static, ref, g, pen, times, meas)
	if !topo.Trivial() {
		report.LinkUtilText(out, topo, report.BuildLinkUtil(topo, g, times, ref))
	}
	return nil
}

func loadScheme(name, file string) (*graph.Graph, topology.Spec, fault.Schedule, error) {
	switch {
	case name != "" && file != "":
		return nil, topology.Spec{}, fault.Schedule{}, fmt.Errorf("use either -scheme or -file, not both")
	case name != "":
		g, ok := schemes.Named(name)
		if !ok {
			return nil, topology.Spec{}, fault.Schedule{}, fmt.Errorf("unknown scheme %q", name)
		}
		return g, topology.Spec{}, fault.Schedule{}, nil
	case file == "-":
		src, err := io.ReadAll(os.Stdin)
		if err != nil {
			return nil, topology.Spec{}, fault.Schedule{}, err
		}
		return schemelang.ParseFull(string(src))
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, topology.Spec{}, fault.Schedule{}, err
		}
		return schemelang.ParseFull(string(src))
	default:
		return nil, topology.Spec{}, fault.Schedule{}, fmt.Errorf("need -scheme <name> or -file <path>")
	}
}
