package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bwshare/internal/schemelang"
	"bwshare/internal/schemes"
)

func TestPredictNamedScheme(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-model", "myrinet", "-scheme", "mk2"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "static penalty") {
		t.Errorf("missing table:\n%s", sb.String())
	}
}

func TestPredictStaticVsProgressive(t *testing.T) {
	var prog, stat strings.Builder
	if err := run([]string{"-model", "gige", "-scheme", "fig4"}, &prog); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-model", "gige", "-scheme", "fig4", "-static"}, &stat); err != nil {
		t.Fatal(err)
	}
	if prog.String() == stat.String() {
		t.Error("static and progressive predictions should differ on fig4")
	}
}

func TestPredictCompare(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-model", "myrinet", "-scheme", "s5", "-compare"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"measured", "Erel", "Eabs"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("missing %q:\n%s", want, sb.String())
		}
	}
}

func TestPredictAllModels(t *testing.T) {
	for _, m := range []string{"gige", "myrinet", "infiniband", "kimlee", "linear"} {
		var sb strings.Builder
		if err := run([]string{"-model", m, "-scheme", "s3"}, &sb); err != nil {
			t.Errorf("model %s: %v", m, err)
		}
	}
}

func TestPredictErrors(t *testing.T) {
	var sb strings.Builder
	for _, args := range [][]string{
		{"-model", "nope", "-scheme", "s1"},
		{"-model", "gige"},
		{"-model", "gige", "-scheme", "bogus"},
		// Non-positive and non-finite reference rates survive flag
		// parsing; the boundary must reject them.
		{"-model", "gige", "-scheme", "s1", "-ref", "-1"},
		{"-model", "gige", "-scheme", "s1", "-ref", "0.0e0x"},
		{"-model", "gige", "-scheme", "s1", "-ref", "Inf"},
		{"-model", "gige", "-scheme", "s1", "-ref", "NaN"},
		// -compare columns are only meaningful at the substrate's own
		// calibrated rate and on its crossbar fabric.
		{"-model", "gige", "-scheme", "s1", "-compare", "-ref", "1e6"},
		{"-model", "gige", "-scheme", "s6", "-compare", "-topology", "fattree 2x4 oversub 2"},
		// The static formulas cannot see a fabric.
		{"-model", "gige", "-scheme", "s6", "-static", "-topology", "fattree 2x4 oversub 2"},
		// Bad and conflicting topology declarations.
		{"-model", "gige", "-scheme", "s6", "-topology", "mesh 2x4"},
		{"-model", "gige", "-scheme", "s6", "-topology", "star 2x2"}, // s6 has 7 nodes
	} {
		if err := run(args, &sb); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

// TestPredictTopologyFlag: the -topology flag produces the same output
// as the equivalent scheme-file header, including the link table.
func TestPredictTopologyFlag(t *testing.T) {
	g, _ := schemes.Named("s6")
	path := filepath.Join(t.TempDir(), "s6topo.txt")
	src := "topology: fattree 2x4 oversub 4\n" + schemelang.Format(g)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var fromFile, fromFlag strings.Builder
	if err := run([]string{"-model", "gige", "-file", path}, &fromFile); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-model", "gige", "-scheme", "s6", "-topology", "fattree 2x4 oversub 4"}, &fromFlag); err != nil {
		t.Fatal(err)
	}
	if fromFile.String() != fromFlag.String() {
		t.Errorf("-topology flag differs from file header:\n%s\nvs\n%s", fromFile.String(), fromFlag.String())
	}
	if !strings.Contains(fromFlag.String(), "topology fattree 2x4 oversub 4 place block") {
		t.Errorf("missing link table:\n%s", fromFlag.String())
	}
	// A file header plus the flag is ambiguous.
	if err := run([]string{"-model", "gige", "-file", path, "-topology", "star 2x4"}, &fromFlag); err == nil {
		t.Error("file header plus -topology accepted")
	}
}

// TestPredictFileMatchesCatalog renders a catalog scheme into a
// schemelang file and checks the -file path produces byte-identical
// output to -scheme.
func TestPredictFileMatchesCatalog(t *testing.T) {
	g, _ := schemes.Named("s2")
	path := filepath.Join(t.TempDir(), "s2.txt")
	if err := os.WriteFile(path, []byte(schemelang.Format(g)), 0o644); err != nil {
		t.Fatal(err)
	}
	var fromFile, fromName strings.Builder
	if err := run([]string{"-model", "gige", "-file", path}, &fromFile); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-model", "gige", "-scheme", "s2"}, &fromName); err != nil {
		t.Fatal(err)
	}
	if fromFile.String() != fromName.String() {
		t.Errorf("-file output differs from -scheme:\n%s\nvs\n%s", fromFile.String(), fromName.String())
	}
}

func TestPredictCompareFromFile(t *testing.T) {
	g, _ := schemes.Named("s3")
	path := filepath.Join(t.TempDir(), "s3.txt")
	if err := os.WriteFile(path, []byte(schemelang.Format(g)), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-model", "gige", "-file", path, "-compare"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"measured [s]", "Erel [%]", "Eabs ="} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("missing %q:\n%s", want, sb.String())
		}
	}
}

func TestPredictStaticCompare(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-model", "gige", "-scheme", "fig4", "-static", "-compare"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "progressive=false") || !strings.Contains(sb.String(), "Eabs =") {
		t.Errorf("static compare output wrong:\n%s", sb.String())
	}
}

func TestPredictMalformedSchemeFile(t *testing.T) {
	cases := map[string]string{
		"missing arrow":   "a: 0 1\n",
		"no label":        "0 -> 1\n",
		"bad node":        "a: x -> 1\n",
		"bad volume":      "a: 0 -> 1 12XB\n",
		"negative volume": "a: 0 -> 1 -3MB\n",
		"self loop":       "a: 2 -> 2\n",
		"empty scheme":    "# only a comment\n",
	}
	for name, src := range cases {
		path := filepath.Join(t.TempDir(), "bad.txt")
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := run([]string{"-model", "gige", "-file", path}, &sb); err == nil {
			t.Errorf("%s: expected a parse error", name)
		}
	}
}

func TestPredictFileErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-model", "gige", "-file", "/nonexistent/scheme.txt"}, &sb); err == nil {
		t.Error("nonexistent file should error")
	}
	if err := run([]string{"-model", "gige", "-scheme", "s1", "-file", "x.txt"}, &sb); err == nil {
		t.Error("-scheme with -file should error")
	}
	if err := run([]string{"-model", "gige", "-scheme", "s1", "-bogus"}, &sb); err == nil {
		t.Error("unknown flag should error")
	}
}

// TestPredictFaultHeaders: a file's fault: headers slow the prediction
// down, and the flags that cannot see a dynamic fabric reject them.
func TestPredictFaultHeaders(t *testing.T) {
	g, _ := schemes.Named("s6")
	body := "topology: fattree 2x4 oversub 4\n" + schemelang.Format(g)
	healthyPath := filepath.Join(t.TempDir(), "healthy.txt")
	faultedPath := filepath.Join(t.TempDir(), "faulted.txt")
	if err := os.WriteFile(healthyPath, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	faulted := "fault: link 0 degrade 0.25 at 0 until 1e9\n" + body
	if err := os.WriteFile(faultedPath, []byte(faulted), 0o644); err != nil {
		t.Fatal(err)
	}
	var healthy, degraded strings.Builder
	if err := run([]string{"-model", "gige", "-file", healthyPath}, &healthy); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-model", "gige", "-file", faultedPath}, &degraded); err != nil {
		t.Fatal(err)
	}
	if healthy.String() == degraded.String() {
		t.Error("a degraded uplink should change the prediction")
	}
	var sb strings.Builder
	if err := run([]string{"-model", "gige", "-file", faultedPath, "-static"}, &sb); err == nil {
		t.Error("-static with fault: headers accepted")
	}
	if err := run([]string{"-model", "gige", "-file", faultedPath, "-compare"}, &sb); err == nil {
		t.Error("-compare with fault: headers accepted")
	}
}

func TestPredictIBAlias(t *testing.T) {
	var ib, long strings.Builder
	if err := run([]string{"-model", "ib", "-scheme", "s4"}, &ib); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-model", "infiniband", "-scheme", "s4"}, &long); err != nil {
		t.Fatal(err)
	}
	if ib.String() != long.String() {
		t.Error("-model ib should match -model infiniband")
	}
}

// TestPredictShardsBitIdentical: -shards must not change a single byte
// of the report, faulted or not (the sharded engine's determinism
// contract), and negative counts are rejected.
func TestPredictShardsBitIdentical(t *testing.T) {
	for _, scheme := range []string{"fig4", "s5"} {
		var seq, par strings.Builder
		if err := run([]string{"-model", "gige", "-scheme", scheme}, &seq); err != nil {
			t.Fatal(err)
		}
		if err := run([]string{"-model", "gige", "-scheme", scheme, "-shards", "8"}, &par); err != nil {
			t.Fatal(err)
		}
		if seq.String() != par.String() {
			t.Errorf("%s: sharded report differs from sequential:\n--- sequential\n%s--- sharded\n%s",
				scheme, seq.String(), par.String())
		}
	}
	var sb strings.Builder
	if err := run([]string{"-model", "gige", "-scheme", "s1", "-shards", "-2"}, &sb); err == nil {
		t.Error("negative -shards accepted")
	}
}
