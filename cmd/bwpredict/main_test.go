package main

import (
	"strings"
	"testing"
)

func TestPredictNamedScheme(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-model", "myrinet", "-scheme", "mk2"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "static penalty") {
		t.Errorf("missing table:\n%s", sb.String())
	}
}

func TestPredictStaticVsProgressive(t *testing.T) {
	var prog, stat strings.Builder
	if err := run([]string{"-model", "gige", "-scheme", "fig4"}, &prog); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-model", "gige", "-scheme", "fig4", "-static"}, &stat); err != nil {
		t.Fatal(err)
	}
	if prog.String() == stat.String() {
		t.Error("static and progressive predictions should differ on fig4")
	}
}

func TestPredictCompare(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-model", "myrinet", "-scheme", "s5", "-compare"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"measured", "Erel", "Eabs"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("missing %q:\n%s", want, sb.String())
		}
	}
}

func TestPredictAllModels(t *testing.T) {
	for _, m := range []string{"gige", "myrinet", "infiniband", "kimlee", "linear"} {
		var sb strings.Builder
		if err := run([]string{"-model", m, "-scheme", "s3"}, &sb); err != nil {
			t.Errorf("model %s: %v", m, err)
		}
	}
}

func TestPredictErrors(t *testing.T) {
	var sb strings.Builder
	for _, args := range [][]string{
		{"-model", "nope", "-scheme", "s1"},
		{"-model", "gige"},
		{"-model", "gige", "-scheme", "bogus"},
	} {
		if err := run(args, &sb); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}
