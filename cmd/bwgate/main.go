// Command bwgate is the serving layer's gateway tier: one address in
// front of N bwserved worker replicas (internal/gateway). It shards the
// prediction-cache keyspace across the fleet with weighted rendezvous
// hashing — repeats of a scheme always hit the replica that computed
// it, so the fleet's effective cache is the union of the replicas'
// LRUs — pins each named cluster's stateful session to one replica,
// health-checks the fleet with automatic eject/re-add, and applies
// admission control per upstream.
//
// Usage:
//
//	bwgate -upstream http://10.0.0.7:8100 -upstream http://10.0.0.8:8100
//	bwgate -addr 127.0.0.1:0 \
//	       -upstream 'http://127.0.0.1:8100,name=a,weight=2' \
//	       -upstream 'http://127.0.0.1:8101,name=b'
//	bwgate -max-inflight 64 -health-interval 2s -retry-after 1s
//
// Each -upstream takes 'url[,name=N][,weight=W]'. The name is the
// replica's stable sharding identity — keys follow the name, not the
// URL, so a replica can change address without cold-starting its share
// of the keyspace; it defaults to the URL. Weight scales the replica's
// share (default 1).
//
// Every response through the gateway is byte-identical to hitting a
// worker directly; the only statuses the gateway originates are 429
// (admission control, Retry-After), 503 (no healthy upstream,
// Retry-After) and 502 (an upstream died mid-request). GET /v1/gateway/stats
// reports the gateway's counters and the per-upstream routing split.
//
// The process shuts down cleanly on SIGINT or SIGTERM, draining
// in-flight requests for up to 5 seconds.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"bwshare/internal/gateway"
)

// shutdownGrace bounds how long a SIGINT/SIGTERM drain may take.
const shutdownGrace = 5 * time.Second

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "bwgate:", err)
		os.Exit(1)
	}
}

// upstreamFlags collects the repeated -upstream values.
type upstreamFlags []gateway.Upstream

func (u *upstreamFlags) String() string {
	parts := make([]string, len(*u))
	for i, up := range *u {
		parts[i] = up.URL
	}
	return strings.Join(parts, " ")
}

// Set parses one 'url[,name=N][,weight=W]' value.
func (u *upstreamFlags) Set(v string) error {
	fields := strings.Split(v, ",")
	up := gateway.Upstream{URL: fields[0]}
	if up.URL == "" {
		return fmt.Errorf("empty upstream URL")
	}
	for _, f := range fields[1:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return fmt.Errorf("upstream option %q is not key=value", f)
		}
		switch key {
		case "name":
			up.Name = val
		case "weight":
			w, err := strconv.ParseFloat(val, 64)
			if err != nil || w <= 0 {
				return fmt.Errorf("upstream weight %q must be a positive number", val)
			}
			up.Weight = w
		default:
			return fmt.Errorf("unknown upstream option %q (want name or weight)", key)
		}
	}
	*u = append(*u, up)
	return nil
}

// run starts the gateway and blocks until a fatal serve error or a stop
// signal. stop overrides the OS signal channel in tests; nil installs
// SIGINT/SIGTERM handling.
func run(args []string, out io.Writer, stop <-chan os.Signal) error {
	fs := flag.NewFlagSet("bwgate", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", ":8090", "listen address (host:port, port 0 picks a free port)")
	var ups upstreamFlags
	fs.Var(&ups, "upstream", "worker replica as 'url[,name=N][,weight=W]' (repeatable, at least one)")
	maxInflight := fs.Int("max-inflight", 0, "in-flight request bound per upstream; beyond it answer 429 + Retry-After (0 = unbounded)")
	healthInterval := fs.Duration("health-interval", gateway.DefaultHealthInterval,
		"active /v1/healthz probe period; ejected replicas rejoin on a passed probe (<= 0 disables the loop)")
	retryAfter := fs.Duration("retry-after", 0, "Retry-After hint on 429/503 answers (0 = 1s default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(ups) == 0 {
		return fmt.Errorf("at least one -upstream is required")
	}
	interval := *healthInterval
	if interval <= 0 {
		interval = -1
	}
	g, err := gateway.New(gateway.Config{
		Upstreams:      ups,
		MaxInFlight:    *maxInflight,
		HealthInterval: interval,
		RetryAfter:     *retryAfter,
	})
	if err != nil {
		return err
	}
	defer g.Close()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "bwgate: listening on http://%s (%d upstreams, max-inflight=%d)\n",
		ln.Addr(), len(ups), *maxInflight)
	if stop == nil {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sig)
		stop = sig
	}
	srv := &http.Server{Handler: g.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-stop:
		fmt.Fprintln(out, "bwgate: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
