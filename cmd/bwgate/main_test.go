package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"bwshare/internal/server"
)

// syncBuffer is an io.Writer safe for the run goroutine + test polling.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

// startGate runs bwgate on an ephemeral port and returns its base URL
// plus a shutdown function that waits for a clean exit.
func startGate(t *testing.T, args ...string) (string, func() error) {
	t.Helper()
	var out syncBuffer
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(append([]string{"-addr", "127.0.0.1:0"}, args...), &out, stop)
	}()
	deadline := time.Now().Add(10 * time.Second)
	var url string
	for url == "" {
		if time.Now().After(deadline) {
			t.Fatalf("gateway did not announce its address; output:\n%s", out.String())
		}
		s := out.String()
		if i := strings.Index(s, "listening on http://"); i >= 0 {
			rest := s[i+len("listening on http://"):]
			if j := strings.IndexAny(rest, " \n"); j >= 0 {
				url = "http://" + rest[:j]
			}
		}
		select {
		case err := <-done:
			t.Fatalf("gateway exited early: %v; output:\n%s", err, out.String())
		case <-time.After(5 * time.Millisecond):
		}
	}
	return url, func() error {
		stop <- os.Interrupt
		select {
		case err := <-done:
			return err
		case <-time.After(10 * time.Second):
			return fmt.Errorf("shutdown timed out")
		}
	}
}

func TestGateServeAndShutdown(t *testing.T) {
	cfg := server.Config{Workers: 2, CacheSize: 64}
	a := httptest.NewServer(server.New(cfg).Handler())
	defer a.Close()
	b := httptest.NewServer(server.New(cfg).Handler())
	defer b.Close()
	url, shutdown := startGate(t,
		"-upstream", a.URL+",name=a",
		"-upstream", b.URL+",name=b,weight=2",
		"-health-interval", "0s")
	resp, err := http.Get(url + "/v1/predict?name=s4&model=gige")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "\"comms\"") {
		t.Errorf("predict through gateway: %d %s", resp.StatusCode, body)
	}
	resp, err = http.Get(url + "/v1/gateway/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "\"upstreams\"") {
		t.Errorf("gateway stats: %d %s", resp.StatusCode, body)
	}
	if err := shutdown(); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

func TestGateRunErrors(t *testing.T) {
	var out syncBuffer
	cases := [][]string{
		{},                                      // no upstream
		{"-upstream", ""},                       // empty URL
		{"-upstream", "http://x,weight=-1"},     // bad weight
		{"-upstream", "http://x,bogus=1"},       // unknown option
		{"-upstream", "not-a-url"},              // not absolute
		{"-upstream", "http://x", "-bogus-opt"}, // unknown flag
	}
	for _, args := range cases {
		if err := run(args, &out, nil); err == nil {
			t.Errorf("args %v should error", args)
		}
	}
}
