// Command bwload is the service-level load harness and deterministic
// capture/replay client for bwserved (internal/loadgen).
//
// Load mode (default) drives a seeded mixed workload — cache-hit and
// cache-miss predictions, fat-tree and faulted simulations, batches,
// text renderings, cluster lifecycles — at a configurable concurrency
// and prints per-class throughput and p50/p95/p99 latency:
//
//	bwload -base http://127.0.0.1:8080 -concurrency 8 -duration 10s
//	bwload -base ... -requests 500 -seed 2 -mix 'predict-hit=4,predict-miss=2'
//	bwload -base ... -latency-log lat.jsonl -report report.json
//
// Load mode exits nonzero if any request failed (non-2xx or transport
// error), so a short pass doubles as an SLO sanity gate in CI; the real
// trend gate is bwbench -check over the service-level entries in
// BENCH_<n>.json.
//
// -base may point at a worker (bwserved) or a gateway (bwgate); the
// target is auto-detected via /v1/gateway/stats, and a gateway run's
// report gains the fleet line — the gateway's admission/health counters
// and the per-upstream request split.
//
// Record mode captures a canonical traffic log: the seeded stream is
// issued sequentially against a FRESH server and every request is
// logged with its response's status and canonical-body fingerprint
// (JSON re-marshaled with sorted keys, so formatting never counts as
// behavior):
//
//	bwload -base ... -record scripts/testdata/load_replay.golden -requests 40 -seed 1
//
// Replay mode re-issues a recorded log in order — time-compressed by
// default, or paced with -pace — against a fresh server of a new build
// and fails on behavioral divergence, printing the first diverging
// request as a repro:
//
//	bwload -base ... -replay scripts/testdata/load_replay.golden
//
// Both sides of a capture must run against a fresh server with the same
// pinned -workers/-cache flags (see scripts/replay_check.sh).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"bwshare/internal/loadgen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bwload:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bwload", flag.ContinueOnError)
	fs.SetOutput(out)
	base := fs.String("base", "http://127.0.0.1:8080", "bwserved base URL")
	concurrency := fs.Int("concurrency", 4, "concurrent client workers (load mode)")
	duration := fs.Duration("duration", 5*time.Second, "load duration (ignored when -requests is set)")
	requests := fs.Int("requests", 0, "fixed op count instead of a duration (required for -record)")
	seed := fs.Int64("seed", 1, "workload seed; fixes every worker's request stream")
	mixFlag := fs.String("mix", "", "request-class weights, e.g. 'predict-hit=4,predict-miss=2,cluster=1' (default loadgen.DefaultMix)")
	latencyLog := fs.String("latency-log", "", "write per-request latency samples (JSONL) here")
	reportPath := fs.String("report", "", "write the aggregated report (JSON) here")
	allowErrors := fs.Bool("allow-errors", false, "don't fail the run on non-2xx answers")
	record := fs.String("record", "", "capture mode: write a canonical traffic log to this path")
	replay := fs.String("replay", "", "replay mode: re-issue this traffic log and fail on divergence")
	pace := fs.Float64("pace", 0, "replay pacing: re-issue at recorded offsets divided by this factor (0 = time-compressed)")
	maxDiv := fs.Int("max-divergences", 8, "stop a replay after this many divergences (0 = report all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *record != "" && *replay != "" {
		return fmt.Errorf("-record and -replay are mutually exclusive")
	}
	var mix loadgen.Mix
	if *mixFlag != "" {
		var err error
		if mix, err = loadgen.ParseMix(*mixFlag); err != nil {
			return err
		}
	}
	switch {
	case *record != "":
		return runRecord(out, *base, *record, *requests, *seed, mix)
	case *replay != "":
		return runReplay(out, *base, *replay, *pace, *maxDiv)
	default:
		return runLoad(out, loadConfig{
			base: *base, concurrency: *concurrency, duration: *duration,
			requests: *requests, seed: *seed, mix: mix,
			latencyLog: *latencyLog, reportPath: *reportPath, allowErrors: *allowErrors,
		})
	}
}

type loadConfig struct {
	base        string
	concurrency int
	duration    time.Duration
	requests    int
	seed        int64
	mix         loadgen.Mix
	latencyLog  string
	reportPath  string
	allowErrors bool
}

func runLoad(out io.Writer, c loadConfig) error {
	cfg := loadgen.Config{
		BaseURL:     c.base,
		Concurrency: c.concurrency,
		Seed:        c.seed,
		Mix:         c.mix,
	}
	if c.requests > 0 {
		cfg.Ops = c.requests
	} else {
		cfg.Duration = c.duration
	}
	res, err := loadgen.Run(cfg)
	if err != nil {
		return err
	}
	rep := loadgen.BuildReport(res)
	// A gateway target (cmd/bwgate) exposes its fleet counters on
	// /v1/gateway/stats; a bare worker answers 404 there. Auto-detect so
	// the same invocation works against either tier, and the gateway run
	// gains the per-upstream routing split in its report.
	if gw, err := loadgen.FetchGatewayStats(nil, c.base); err == nil && gw != nil {
		rep.Gateway = gw
	}
	rep.Text(out)
	if c.latencyLog != "" {
		if err := writeFileWith(c.latencyLog, func(w io.Writer) error {
			return loadgen.WriteLatencyLog(w, res)
		}); err != nil {
			return fmt.Errorf("latency log: %w", err)
		}
		fmt.Fprintf(out, "wrote %s (%d samples)\n", c.latencyLog, len(res.Samples))
	}
	if c.reportPath != "" {
		if err := writeFileWith(c.reportPath, func(w io.Writer) error {
			return writeJSON(w, rep)
		}); err != nil {
			return fmt.Errorf("report: %w", err)
		}
		fmt.Fprintf(out, "wrote %s\n", c.reportPath)
	}
	if rep.Overall.Errors > 0 && !c.allowErrors {
		return fmt.Errorf("%d of %d requests failed (rerun with -allow-errors to tolerate)",
			rep.Overall.Errors, rep.Overall.Count)
	}
	return nil
}

func runRecord(out io.Writer, base, path string, requests int, seed int64, mix loadgen.Mix) error {
	if requests <= 0 {
		return fmt.Errorf("-record needs -requests: a deterministic capture has a fixed length, not a duration")
	}
	entries, err := loadgen.Record(loadgen.Config{BaseURL: base, Ops: requests, Seed: seed, Mix: mix})
	if err != nil {
		return err
	}
	if err := writeFileWith(path, func(w io.Writer) error {
		return loadgen.WriteLog(w, entries)
	}); err != nil {
		return err
	}
	fmt.Fprintf(out, "recorded %d requests (%d ops, seed %d) to %s\n", len(entries), requests, seed, path)
	return nil
}

func runReplay(out io.Writer, base, path string, pace float64, maxDiv int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	entries, err := loadgen.ReadLog(f)
	f.Close()
	if err != nil {
		return err
	}
	res, err := loadgen.Replay(loadgen.ReplayConfig{
		BaseURL: base, Pace: pace, MaxDivergences: maxDiv,
	}, entries)
	if err != nil {
		return err
	}
	if n := len(res.Divergences); n > 0 {
		fmt.Fprintf(out, "replay of %s: %d of %d replayed requests DIVERGED\n", path, n, res.Total)
		fmt.Fprintf(out, "first divergence (repro):\n%s", res.Divergences[0])
		if n > 1 {
			fmt.Fprintf(out, "(%d further divergences follow the first; fix or re-record the golden)\n", n-1)
		}
		return fmt.Errorf("behavioral divergence against %s", path)
	}
	fmt.Fprintf(out, "replay of %s: %d requests, zero divergences\n", path, res.Total)
	return nil
}

// writeFileWith writes a file through a callback, propagating both the
// callback's and Close's errors.
func writeFileWith(path string, fill func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeJSON(w io.Writer, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
