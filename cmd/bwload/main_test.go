package main

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bwshare/internal/loadgen"
	"bwshare/internal/server"
)

func freshServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(server.New(server.Config{Workers: 2, CacheSize: 256}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestLoadMode: a fixed-request load pass against an in-process
// bwserved succeeds, prints the per-class table and writes both the
// latency log and the JSON report.
func TestLoadMode(t *testing.T) {
	ts := freshServer(t)
	dir := t.TempDir()
	lat := filepath.Join(dir, "lat.jsonl")
	rep := filepath.Join(dir, "report.json")
	var out strings.Builder
	err := run([]string{
		"-base", ts.URL, "-concurrency", "2", "-requests", "30", "-seed", "2",
		"-latency-log", lat, "-report", rep,
	}, &out)
	if err != nil {
		t.Fatalf("load mode failed: %v\n%s", err, out.String())
	}
	for _, want := range []string{"class", "p99", "predict-hit"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report output missing %q:\n%s", want, out.String())
		}
	}
	data, err := os.ReadFile(rep)
	if err != nil {
		t.Fatal(err)
	}
	var report loadgen.Report
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if report.Overall.Count < 30 || report.Overall.Errors != 0 {
		t.Errorf("report overall = %+v", report.Overall)
	}
	if fi, err := os.Stat(lat); err != nil || fi.Size() == 0 {
		t.Errorf("latency log missing or empty: %v", err)
	}
}

// TestLoadModeFailsOnErrors: load mode is an SLO sanity gate — any
// failed request fails the run unless -allow-errors.
func TestLoadModeFailsOnErrors(t *testing.T) {
	ts := freshServer(t)
	args := []string{
		"-base", ts.URL, "-requests", "5", "-seed", "1", "-mix", "bad-request=1",
	}
	var out strings.Builder
	if err := run(args, &out); err == nil {
		t.Error("load over bad-request mix should fail without -allow-errors")
	}
	out.Reset()
	if err := run(append(args, "-allow-errors"), &out); err != nil {
		t.Errorf("-allow-errors should tolerate 4xx answers: %v", err)
	}
}

// TestRecordReplayRoundTrip: record against a fresh server, replay
// against another fresh server of the same build — zero divergences;
// then replay against a perturbed server and require the divergence
// repro on stdout.
func TestRecordReplayRoundTrip(t *testing.T) {
	log := filepath.Join(t.TempDir(), "traffic.jsonl")
	var out strings.Builder
	if err := run([]string{"-base", freshServer(t).URL, "-record", log, "-requests", "20", "-seed", "4"}, &out); err != nil {
		t.Fatalf("record failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "recorded") {
		t.Errorf("record output: %s", out.String())
	}

	out.Reset()
	if err := run([]string{"-base", freshServer(t).URL, "-replay", log}, &out); err != nil {
		t.Fatalf("same-build replay diverged: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "zero divergences") {
		t.Errorf("replay output: %s", out.String())
	}

	srv := server.New(server.Config{Workers: 2, CacheSize: 256})
	perturbed := httptest.NewServer(loadgen.PerturbNth(srv.Handler(), 3))
	defer perturbed.Close()
	out.Reset()
	if err := run([]string{"-base", perturbed.URL, "-replay", log}, &out); err == nil {
		t.Fatalf("perturbed replay should fail:\n%s", out.String())
	}
	for _, want := range []string{"DIVERGED", "first divergence", "seq 2", "fingerprint"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("divergence repro missing %q:\n%s", want, out.String())
		}
	}
}

func TestFlagValidation(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-record", "x", "-replay", "y"}, &out); err == nil {
		t.Error("-record with -replay should fail")
	}
	if err := run([]string{"-record", "x"}, &out); err == nil {
		t.Error("-record without -requests should fail")
	}
	if err := run([]string{"-mix", "bogus=1"}, &out); err == nil {
		t.Error("unknown mix class should fail")
	}
	if err := run([]string{"-replay", filepath.Join(t.TempDir(), "absent.jsonl")}, &out); err == nil {
		t.Error("replay of a missing log should fail")
	}
}
