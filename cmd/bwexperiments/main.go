// Command bwexperiments regenerates every table and figure of the
// paper's evaluation section plus the ablation experiments, printing
// our simulated results side by side with the published numbers.
//
// Experiments run concurrently over a bounded worker pool; output order
// and content are byte-identical for any -parallel value, and the
// randomized sweep is a pure function of -seed.
//
// Usage:
//
//	bwexperiments                     # everything, NumCPU workers
//	bwexperiments -exp f2             # one experiment: f2 f4 f5 f6 f7 f8 f9 a1 a2 a3 x1 topo churn rnd
//	bwexperiments -exp f8 -n 10000    # smaller HPL replay
//	bwexperiments -random 50 -seed 7  # add a 50-scheme randomized sweep
//	bwexperiments -parallel 1         # serial execution (same output)
//	bwexperiments -cpuprofile cpu.pb.gz -memprofile mem.pb.gz  # pprof a sweep
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"bwshare/internal/experiments"
	"bwshare/internal/randgen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bwexperiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bwexperiments", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment id: f2 f4 f5 f6 f7 f8 f9 a1 a2 a3 x1 topo churn rnd or all")
	n := fs.Int("n", 20500, "HPL problem size for f8/f9")
	tasks := fs.Int("tasks", 16, "HPL task count for f8/f9")
	nodes := fs.Int("nodes", 8, "cluster nodes for f8/f9")
	parallel := fs.Int("parallel", 0, "experiment worker pool size (0 = NumCPU); does not change output")
	seed := fs.Int64("seed", 1, "seed for the randomized sweep")
	random := fs.Int("random", 0, "number of random schemes in the rnd sweep (0 disables it)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile taken after the run to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bwexperiments: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // profile the live heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "bwexperiments: -memprofile:", err)
			}
		}()
	}
	if *random < 0 {
		return fmt.Errorf("-random must be >= 0, got %d", *random)
	}
	if *exp == "rnd" && *random == 0 {
		*random = 50
	}
	opt := experiments.Options{
		HPL: experiments.HPLConfig{N: *n, Tasks: *tasks, Nodes: *nodes, Seed: 42},
		Sweep: experiments.SweepConfig{
			Seed:    *seed,
			N:       *random,
			Workers: *parallel,
			Scheme:  randgen.DefaultSchemeConfig(),
		},
	}
	specs, ok := experiments.SelectSpecs(experiments.Specs(opt), *exp)
	if !ok {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	if len(specs) > 1 {
		// The catalog runner already saturates the pool; let the sweep
		// parallelize internally only when it runs alone, so -parallel
		// bounds the total concurrency either way.
		opt.Sweep.Workers = 1
		specs, _ = experiments.SelectSpecs(experiments.Specs(opt), *exp)
	}
	return (experiments.Runner{Workers: *parallel}).RunSeq(specs, func(o experiments.Outcome) {
		fmt.Fprint(out, o.Artifact)
	})
}
