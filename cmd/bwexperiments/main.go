// Command bwexperiments regenerates every table and figure of the
// paper's evaluation section plus the ablations of DESIGN.md, printing
// our simulated results side by side with the published numbers.
//
// Usage:
//
//	bwexperiments              # everything
//	bwexperiments -exp f2      # one experiment: f2 f4 f5 f6 f7 f8 f9 a1 a2 a3
//	bwexperiments -exp f8 -n 10000
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"bwshare/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bwexperiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bwexperiments", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment id: f2 f4 f5 f6 f7 f8 f9 a1 a2 a3 x1 or all")
	n := fs.Int("n", 20500, "HPL problem size for f8/f9")
	tasks := fs.Int("tasks", 16, "HPL task count for f8/f9")
	nodes := fs.Int("nodes", 8, "cluster nodes for f8/f9")
	if err := fs.Parse(args); err != nil {
		return err
	}
	hplCfg := experiments.HPLConfig{N: *n, Tasks: *tasks, Nodes: *nodes, Seed: 42}
	want := func(id string) bool { return *exp == "all" || *exp == id }
	ran := false
	if want("f2") {
		fmt.Fprint(out, experiments.Fig2Table(experiments.Fig2()))
		ran = true
	}
	if want("f4") {
		fmt.Fprint(out, experiments.Fig4Table(experiments.Fig4()), "\n")
		ran = true
	}
	if want("f5") {
		fmt.Fprint(out, experiments.Fig5Text(experiments.Fig5()), "\n")
		ran = true
	}
	if want("f6") {
		fmt.Fprint(out, experiments.Fig6Table(experiments.Fig6()), "\n")
		ran = true
	}
	if want("f7") {
		for _, r := range experiments.Fig7() {
			fmt.Fprint(out, experiments.Fig7Table(r), "\n")
		}
		ran = true
	}
	if want("f8") {
		r, err := experiments.Fig8(hplCfg)
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.HPLText(r, "Figure 8"))
		ran = true
	}
	if want("f9") {
		r, err := experiments.Fig9(hplCfg)
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.HPLText(r, "Figure 9"))
		ran = true
	}
	if want("a1") {
		fmt.Fprint(out, experiments.A1Table(experiments.AblationStaticVsProgressive()), "\n")
		ran = true
	}
	if want("a2") {
		fmt.Fprint(out, experiments.A2Table(experiments.AblationConflictRule()), "\n")
		ran = true
	}
	if want("a3") {
		fmt.Fprint(out, experiments.A3Table(experiments.AblationBaselines()), "\n")
		ran = true
	}
	if want("x1") {
		fmt.Fprint(out, experiments.MulticoreTable(experiments.Multicore()), "\n")
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return nil
}
