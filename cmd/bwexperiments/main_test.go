package main

import (
	"strings"
	"testing"
)

func TestSingleExperiments(t *testing.T) {
	cases := map[string]string{
		"f2": "Figure 2",
		"f4": "Figure 4",
		"f5": "Figure 5",
		"f6": "Figure 6",
		"f7": "Figure 7",
		"a1": "EXP-A1",
		"a2": "EXP-A2",
		"a3": "EXP-A3",
	}
	for exp, want := range cases {
		var sb strings.Builder
		if err := run([]string{"-exp", exp}, &sb); err != nil {
			t.Errorf("-exp %s: %v", exp, err)
			continue
		}
		if !strings.Contains(sb.String(), want) {
			t.Errorf("-exp %s output missing %q", exp, want)
		}
	}
}

func TestHPLExperimentsSmall(t *testing.T) {
	for _, exp := range []string{"f8", "f9"} {
		var sb strings.Builder
		if err := run([]string{"-exp", exp, "-n", "2400"}, &sb); err != nil {
			t.Fatalf("-exp %s: %v", exp, err)
		}
		if !strings.Contains(sb.String(), "per-task communication time") {
			t.Errorf("-exp %s missing chart", exp)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "f99"}, &sb); err == nil {
		t.Fatal("expected error")
	}
}
