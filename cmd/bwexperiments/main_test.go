package main

import (
	"strings"
	"testing"
)

func TestSingleExperiments(t *testing.T) {
	cases := map[string]string{
		"f2":    "Figure 2",
		"f4":    "Figure 4",
		"f5":    "Figure 5",
		"f6":    "Figure 6",
		"f7":    "Figure 7",
		"a1":    "EXP-A1",
		"a2":    "EXP-A2",
		"a3":    "EXP-A3",
		"churn": "EXP-CHURN",
	}
	for exp, want := range cases {
		var sb strings.Builder
		if err := run([]string{"-exp", exp}, &sb); err != nil {
			t.Errorf("-exp %s: %v", exp, err)
			continue
		}
		if !strings.Contains(sb.String(), want) {
			t.Errorf("-exp %s output missing %q", exp, want)
		}
	}
}

func TestHPLExperimentsSmall(t *testing.T) {
	for _, exp := range []string{"f8", "f9"} {
		var sb strings.Builder
		if err := run([]string{"-exp", exp, "-n", "2400"}, &sb); err != nil {
			t.Fatalf("-exp %s: %v", exp, err)
		}
		if !strings.Contains(sb.String(), "per-task communication time") {
			t.Errorf("-exp %s missing chart", exp)
		}
	}
}

// TestParallelOutputIdentical runs the whole catalog (small HPL, plus a
// randomized sweep) serially and with 8 workers: the output must be
// byte-identical, and fixed seeds must reproduce it exactly.
func TestParallelOutputIdentical(t *testing.T) {
	outputs := make([]string, 0, 3)
	for _, args := range [][]string{
		{"-parallel", "1", "-seed", "3", "-random", "10", "-n", "2400"},
		{"-parallel", "8", "-seed", "3", "-random", "10", "-n", "2400"},
		{"-parallel", "4", "-seed", "3", "-random", "10", "-n", "2400"},
	} {
		var sb strings.Builder
		if err := run(args, &sb); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		outputs = append(outputs, sb.String())
	}
	if outputs[0] != outputs[1] || outputs[0] != outputs[2] {
		t.Fatal("output differs across -parallel values")
	}
	if !strings.Contains(outputs[0], "EXP-RND") {
		t.Fatal("randomized sweep missing from catalog run")
	}
	// Different seeds must change the sweep rows themselves, not just
	// the seed echoed in the table title.
	sweepRows := func(seed string) string {
		var sb strings.Builder
		if err := run([]string{"-parallel", "8", "-seed", seed, "-exp", "rnd", "-random", "10"}, &sb); err != nil {
			t.Fatal(err)
		}
		lines := strings.SplitN(sb.String(), "\n", 2)
		if len(lines) != 2 {
			t.Fatalf("seed %s: sweep output too short:\n%s", seed, sb.String())
		}
		return lines[1]
	}
	if sweepRows("3") == sweepRows("4") {
		t.Fatal("different seeds produced identical sweep rows")
	}
}

func TestRandomSweepFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "rnd", "-seed", "9"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "50 schemes x 3 substrates (seed 9)") {
		t.Fatalf("-exp rnd should default to 50 schemes, got:\n%s", sb.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "f99"}, &sb); err == nil {
		t.Fatal("expected error")
	}
}
