// Command bwshare is the reproduction of the paper's measurement
// software (Section IV-B): it runs a communication scheme on a simulated
// interconnect substrate, all transfers starting simultaneously, and
// prints per-communication times and penalties Pi = Ti/Tref.
//
// Usage:
//
//	bwshare -net myrinet -scheme s5
//	bwshare -net gige -file myscheme.txt
//	echo 'a: 0 -> 1
//	      b: 0 -> 2' | bwshare -net infiniband -file -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"bwshare/internal/core"
	"bwshare/internal/graph"
	"bwshare/internal/measure"
	"bwshare/internal/netsim/gige"
	"bwshare/internal/netsim/infiniband"
	"bwshare/internal/netsim/myrinet"
	"bwshare/internal/report"
	"bwshare/internal/schemelang"
	"bwshare/internal/schemes"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bwshare:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bwshare", flag.ContinueOnError)
	net := fs.String("net", "gige", "substrate: gige, myrinet or infiniband")
	schemeName := fs.String("scheme", "", "named scheme from the paper registry: "+strings.Join(schemes.Names(), ", "))
	file := fs.String("file", "", "scheme description file ('-' for stdin)")
	dot := fs.Bool("dot", false, "also print the scheme in Graphviz dot syntax")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := loadScheme(*schemeName, *file)
	if err != nil {
		return err
	}
	e, err := engineByName(*net)
	if err != nil {
		return err
	}
	if *dot {
		fmt.Fprint(out, g.DOT("scheme"))
	}
	r := measure.Run(e, g)
	tref := 20e6 / r.RefRate
	fmt.Fprintf(out, "substrate %s: ref rate %.1f MB/s (Tref(20MB) = %.4f s)\n", e.Name(), r.RefRate/1e6, tref)
	t := report.Table{Header: []string{"comm", "src", "dst", "volume [MB]", "time [s]", "penalty"}}
	for _, c := range g.Comms() {
		t.AddRow(c.Label, fmt.Sprint(c.Src), fmt.Sprint(c.Dst),
			fmt.Sprintf("%.1f", c.Volume/1e6),
			fmt.Sprintf("%.4f", r.Times[c.ID]),
			fmt.Sprintf("%.3f", r.Penalties[c.ID]))
	}
	t.Render(out)
	return nil
}

func loadScheme(name, file string) (*graph.Graph, error) {
	switch {
	case name != "" && file != "":
		return nil, fmt.Errorf("use either -scheme or -file, not both")
	case name != "":
		g, ok := schemes.Named(name)
		if !ok {
			return nil, fmt.Errorf("unknown scheme %q (known: %s)", name, strings.Join(schemes.Names(), ", "))
		}
		return g, nil
	case file == "-":
		src, err := io.ReadAll(os.Stdin)
		if err != nil {
			return nil, err
		}
		return schemelang.Parse(string(src))
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return schemelang.Parse(string(src))
	default:
		return nil, fmt.Errorf("need -scheme <name> or -file <path>")
	}
}

func engineByName(name string) (core.Engine, error) {
	switch name {
	case "gige":
		return gige.New(gige.DefaultConfig()), nil
	case "myrinet":
		return myrinet.New(myrinet.DefaultConfig()), nil
	case "infiniband", "ib":
		return infiniband.New(infiniband.DefaultConfig()), nil
	default:
		return nil, fmt.Errorf("unknown substrate %q (want gige, myrinet or infiniband)", name)
	}
}
