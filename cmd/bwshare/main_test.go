package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunNamedScheme(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-net", "myrinet", "-scheme", "s4"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"myrinet", "penalty", "d"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSchemeFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.txt")
	if err := os.WriteFile(path, []byte("a: 0 -> 1\nb: 0 -> 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-net", "gige", "-file", path, "-dot"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "digraph") {
		t.Error("missing -dot output")
	}
	if !strings.Contains(sb.String(), "1.500") {
		t.Errorf("expected the 1.5 GigE two-flow penalty:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-scheme", "nope"},
		{"-net", "token-ring", "-scheme", "s1"},
		{},
		{"-scheme", "s1", "-file", "x"},
		{"-file", "/nonexistent/path"},
	}
	var sb strings.Builder
	for _, args := range cases {
		if err := run(args, &sb); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}
