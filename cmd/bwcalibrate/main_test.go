package main

import (
	"strings"
	"testing"
)

func TestCalibrateGigE(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-net", "gige"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "beta    = 0.7500") {
		t.Errorf("expected beta 0.75:\n%s", sb.String())
	}
}

func TestCalibrateCheck(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-net", "infiniband", "-check"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"gamma_o", "mk2", "Eabs"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("missing %q:\n%s", want, sb.String())
		}
	}
}

func TestCalibrateErrors(t *testing.T) {
	var sb strings.Builder
	for _, args := range [][]string{
		{"-net", "nope"},
		{"-net", "gige", "-kmax", "1"},
	} {
		if err := run(args, &sb); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}
