// Command bwcalibrate runs the paper's Section V-A parameter estimation
// against a simulated substrate: beta from k-way outgoing conflicts,
// gamma_o and gamma_i from the Figure 4 scheme. It prints the fitted
// degree model and, with -check, its accuracy on the registry schemes.
//
// Usage:
//
//	bwcalibrate -net gige
//	bwcalibrate -net infiniband -kmax 6 -check
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"bwshare/internal/calibrate"
	"bwshare/internal/core"
	"bwshare/internal/measure"
	"bwshare/internal/netsim/gige"
	"bwshare/internal/netsim/infiniband"
	"bwshare/internal/netsim/myrinet"
	"bwshare/internal/predict"
	"bwshare/internal/report"
	"bwshare/internal/schemes"
	"bwshare/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bwcalibrate:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bwcalibrate", flag.ContinueOnError)
	net := fs.String("net", "gige", "substrate to calibrate against: gige, myrinet, infiniband")
	kmax := fs.Int("kmax", 4, "largest outgoing conflict used for beta estimation")
	volume := fs.Float64("volume", 20e6, "message volume in bytes")
	check := fs.Bool("check", false, "evaluate the fitted model on the registry schemes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var e core.Engine
	switch *net {
	case "gige":
		e = gige.New(gige.DefaultConfig())
	case "myrinet":
		e = myrinet.New(myrinet.DefaultConfig())
	case "infiniband", "ib":
		e = infiniband.New(infiniband.DefaultConfig())
	default:
		return fmt.Errorf("unknown substrate %q", *net)
	}
	m, err := calibrate.Fit("fitted-"+e.Name(), e, *kmax, *volume)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "calibrated against %s (kmax=%d, volume=%.0f MB):\n", e.Name(), *kmax, *volume/1e6)
	fmt.Fprintf(out, "  beta    = %.4f\n", m.Beta)
	fmt.Fprintf(out, "  gamma_o = %.4f\n", m.GammaOut)
	fmt.Fprintf(out, "  gamma_i = %.4f\n", m.GammaIn)
	fmt.Fprintf(out, "(paper GigE values: beta 0.75, gamma_o 0.115, gamma_i 0.036)\n")
	if !*check {
		return nil
	}
	t := report.Table{
		Title:  "fitted model vs substrate (progressive prediction)",
		Header: []string{"scheme", "Eabs [%]"},
	}
	for _, name := range schemes.Names() {
		g, _ := schemes.Named(name)
		meas := measure.Run(e, g)
		pred := predict.Times(g, m, meas.RefRate)
		t.AddRow(name, fmt.Sprintf("%.1f", stats.AbsErr(pred, meas.Times)))
	}
	t.Render(out)
	return nil
}
