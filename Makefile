# Tier-1 verification and development targets. `make verify` is the
# canonical gate: go build ./... && go test ./...
GO ?= go

.PHONY: build test race bench bench-json verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# bench-json writes the next perf-trajectory snapshot BENCH_<n>.json via
# cmd/bwbench (full suite; go-bench lines stream to stdout; n is one past
# the highest existing snapshot, or PR=<n> to force). Compare snapshots
# across PRs, or pipe repeated runs into benchstat.
bench-json:
	$(GO) run ./cmd/bwbench $(if $(PR),-pr $(PR))

verify: build test
