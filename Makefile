# Tier-1 verification and development targets. `make verify` is the
# canonical local gate and mirrors the CI pipeline: format + vet gates,
# build, tests, targeted race tests and the bwserved/bwpredict smoke
# diff. `make ci` additionally runs the bench-regression check and the
# service-level load + replay gates (separate CI jobs, kept out of
# verify because benchmarks take ~20s).
GO ?= go

.PHONY: build test race bench bench-json bench-check fmt vet serve smoke load-smoke replay-check gateway-smoke verify ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race covers the concurrency-bearing packages, matching the CI race
# step: the parallel experiment runner, the engines, and the HTTP
# serving layer (worker tier, gateway tier and their binaries). The sharded-engine packages (worker-shard fan-out in
# netsim, the parallel predict sessions, the des queues they own and
# the replay driver on top) additionally run at -cpu=1,2,8 so the
# shard workers execute both inline (GOMAXPROCS=1) and truly parallel,
# with the bit-identical differential tests under the detector.
race:
	$(GO) test -race -cpu=1,2,8 ./internal/netsim/... ./internal/des/ ./internal/predict/ ./internal/replay/
	$(GO) test -race ./internal/experiments/ ./internal/fault/ ./internal/server/ ./internal/fleet/ ./internal/gateway/ ./cmd/bwserved/ ./cmd/bwgate/

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# bench-json writes the next perf-trajectory snapshot BENCH_<n>.json via
# cmd/bwbench (full suite; go-bench lines stream to stdout; n is one past
# the highest existing snapshot, or PR=<n> to force). Compare snapshots
# across PRs, or pipe repeated runs into benchstat.
bench-json:
	$(GO) run ./cmd/bwbench $(if $(PR),-pr $(PR))

# bench-check is the CI regression gate: rerun the suite and fail on
# >25% ns/op regression (or any allocation on a zero-alloc suite)
# against the latest committed BENCH_<n>.json, or BASELINE=<path>.
# IGNORE_MISSING=<regexp> exempts matching baseline entries from the
# missing-from-run failure (for gating against an older snapshot).
bench-check:
	$(GO) run ./cmd/bwbench -check $(if $(BASELINE),-baseline $(BASELINE)) $(if $(IGNORE_MISSING),-ignore-missing '$(IGNORE_MISSING)')

# fmt fails (listing the files) if any file needs gofmt; same gate as CI.
fmt:
	@files=$$(gofmt -l .); if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; fi

vet:
	$(GO) vet ./...

# serve runs the HTTP prediction service; SERVE_FLAGS passes extra flags
# (e.g. make serve SERVE_FLAGS="-addr 127.0.0.1:9000 -workers 8").
serve:
	$(GO) run ./cmd/bwserved $(SERVE_FLAGS)

# smoke starts bwserved and diffs /v1/predict?format=text against
# bwpredict stdout for catalog schemes — byte-identical or it fails.
smoke:
	sh scripts/smoke.sh

# load-smoke starts bwserved (pinned sizing) and drives a short
# fixed-seed mixed workload with bwload; any failed request fails the
# run. ARTIFACT_DIR=<dir> keeps the latency log and report.
load-smoke:
	sh scripts/load_smoke.sh

# replay-check replays the committed deterministic traffic log
# scripts/testdata/load_replay.golden against a fresh bwserved and fails
# on any behavioral divergence. After an intended behavior change,
# re-record with `sh scripts/replay_check.sh record`.
replay-check:
	sh scripts/replay_check.sh

# gateway-smoke records a fixed-seed stream against a direct worker,
# replays it through a bwgate over two fresh replicas (must be
# byte-identical — zero divergences), then runs a concurrent load pass
# through the gateway and checks both upstreams served. ARTIFACT_DIR
# keeps the logs, recorded stream and fleet report.
gateway-smoke:
	sh scripts/gateway_smoke.sh

verify: fmt vet build test race smoke

ci: verify bench-check load-smoke replay-check gateway-smoke
