# Tier-1 verification and development targets. `make verify` is the
# canonical gate: go build ./... && go test ./...
GO ?= go

.PHONY: build test race bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

verify: build test
